//! Power-of-two histogram buckets.
//!
//! Bucket 0 holds the value 0, bucket 1 holds the value 1, and bucket
//! `b ≥ 1` holds values in `[2^(b-1), 2^b)`; everything at or above
//! `2^(BUCKETS-2)` lands in the last bucket. 32 buckets therefore
//! cover every value a table of < 2^31 cells can produce (probe
//! lengths, CAS retries, pack sizes) with a fixed-size array that fits
//! in a thread shard.

/// Number of buckets per histogram.
pub const BUCKETS: usize = 32;

/// The bucket index for `value`.
#[inline]
pub fn bucket(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((64 - value.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// Human-readable label for bucket `b` (`"0"`, `"1"`, `"2-3"`, ...).
pub fn bucket_label(b: usize) -> String {
    assert!(b < BUCKETS);
    match b {
        0 => "0".to_string(),
        1 => "1".to_string(),
        _ if b == BUCKETS - 1 => format!("{}+", 1u64 << (b - 1)),
        _ => format!("{}-{}", 1u64 << (b - 1), (1u64 << b) - 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        // The satellite checklist's boundary cases: 0, 1, 2^k, 2^k + 1.
        assert_eq!(bucket(0), 0);
        assert_eq!(bucket(1), 1);
        for k in 1..30u32 {
            let p = 1u64 << k;
            assert_eq!(bucket(p), k as usize + 1, "2^{k}");
            assert_eq!(bucket(p + 1), k as usize + 1, "2^{k}+1");
            assert_eq!(bucket(p - 1), k as usize, "2^{k}-1");
        }
        // Everything huge saturates into the last bucket.
        assert_eq!(bucket(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket(1u64 << 40), BUCKETS - 1);
    }

    #[test]
    fn labels_match_buckets() {
        assert_eq!(bucket_label(0), "0");
        assert_eq!(bucket_label(1), "1");
        assert_eq!(bucket_label(2), "2-3");
        assert_eq!(bucket_label(5), "16-31");
        assert_eq!(
            bucket_label(BUCKETS - 1),
            format!("{}+", 1u64 << (BUCKETS - 2))
        );
        // Every label's lower bound is in its own bucket.
        for b in 2..BUCKETS - 1 {
            assert_eq!(bucket(1u64 << (b - 1)), b);
            assert_eq!(bucket((1u64 << b) - 1), b);
        }
    }
}
