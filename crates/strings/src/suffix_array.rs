//! Suffix array by parallel prefix doubling, and Kasai's LCP.

use rayon::prelude::*;

/// Builds the suffix array of `text` (all bytes allowed except the
/// implicit terminator, which is smaller than every byte). Prefix
/// doubling with parallel sorts: O(n log² n) work, deterministic.
pub fn suffix_array(text: &[u8]) -> Vec<u32> {
    let n = text.len();
    if n == 0 {
        return Vec::new();
    }
    // rank[i] = rank of suffix i by its first k characters.
    let mut rank: Vec<u32> = text.par_iter().map(|&b| b as u32 + 1).collect();
    let mut sa: Vec<u32> = (0..n as u32).collect();
    let key = |sa_i: u32, rank: &[u32], k: usize| -> (u32, u32) {
        let i = sa_i as usize;
        let second = if i + k < rank.len() { rank[i + k] } else { 0 };
        (rank[i], second)
    };
    let mut k = 0usize; // current prefix length handled (0 = single char pass next)
    loop {
        {
            let r = &rank;
            sa.par_sort_unstable_by_key(|&i| key(i, r, k));
        }
        // Re-rank.
        let mut new_rank = vec![0u32; n];
        let mut r = 1u32;
        new_rank[sa[0] as usize] = r;
        for w in 1..n {
            if key(sa[w], &rank, k) != key(sa[w - 1], &rank, k) {
                r += 1;
            }
            new_rank[sa[w] as usize] = r;
        }
        rank = new_rank;
        if r as usize == n {
            break;
        }
        k = if k == 0 { 1 } else { k * 2 };
        if k >= n {
            // All distinct by now unless the text is fully periodic;
            // one more ranking pass resolves it.
            if r as usize == n {
                break;
            }
        }
        if k > 2 * n {
            unreachable!("prefix doubling failed to converge");
        }
    }
    sa
}

/// Kasai's algorithm: `lcp[j]` is the length of the longest common
/// prefix of `text[sa[j]..]` and `text[sa[j-1]..]` (`lcp[0] = 0`).
pub fn lcp_kasai(text: &[u8], sa: &[u32]) -> Vec<u32> {
    let n = text.len();
    let mut lcp = vec![0u32; n];
    if n == 0 {
        return lcp;
    }
    let mut rank = vec![0u32; n];
    for (j, &s) in sa.iter().enumerate() {
        rank[s as usize] = j as u32;
    }
    let mut h = 0usize;
    for i in 0..n {
        let r = rank[i] as usize;
        if r > 0 {
            let j = sa[r - 1] as usize;
            while i + h < n && j + h < n && text[i + h] == text[j + h] {
                h += 1;
            }
            lcp[r] = h as u32;
            h = h.saturating_sub(1);
        } else {
            h = 0;
        }
    }
    lcp
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_sa(text: &[u8]) -> Vec<u32> {
        let mut sa: Vec<u32> = (0..text.len() as u32).collect();
        sa.sort_by(|&a, &b| text[a as usize..].cmp(&text[b as usize..]));
        sa
    }

    #[test]
    fn banana() {
        let t = b"banana";
        assert_eq!(suffix_array(t), naive_sa(t));
    }

    #[test]
    fn matches_naive_on_random_texts() {
        for seed in 0..5u64 {
            let t = phc_workloads::text::protein_like(500, seed);
            assert_eq!(suffix_array(&t), naive_sa(&t), "seed {seed}");
        }
    }

    #[test]
    fn periodic_text() {
        let t = b"abababababababab";
        assert_eq!(suffix_array(t), naive_sa(t));
        let t2 = vec![b'a'; 64];
        assert_eq!(suffix_array(&t2), naive_sa(&t2));
    }

    #[test]
    fn empty_and_single() {
        assert!(suffix_array(b"").is_empty());
        assert_eq!(suffix_array(b"x"), vec![0]);
    }

    #[test]
    fn kasai_matches_naive() {
        let t = phc_workloads::text::english_like(400, 3);
        let sa = suffix_array(&t);
        let lcp = lcp_kasai(&t, &sa);
        for j in 1..sa.len() {
            let a = &t[sa[j - 1] as usize..];
            let b = &t[sa[j] as usize..];
            let naive = a.iter().zip(b).take_while(|(x, y)| x == y).count();
            assert_eq!(lcp[j] as usize, naive, "at {j}");
        }
        assert_eq!(lcp[0], 0);
    }
}
