//! Suffix tree with hash-table children (paper §5; Table 5).
//!
//! The skeleton (node depths, parents, representative suffixes) is
//! built sequentially from the suffix array + LCP with the classic
//! stack construction; the **child edges are then inserted in parallel
//! into a phase-concurrent hash table** — this is the portion the paper
//! times in Table 5(a). Searches (Table 5(b)) are hash finds walking
//! down from the root.
//!
//! The child key packs `(node id + 1, first edge byte)` into a `u32`
//! ([`KvPair`] key); the value is the child node id. One child per
//! (node, byte), so the combining policy never fires.

use phc_core::entry::{KeepMin, KvPair};
use phc_core::phase::{ConcurrentInsert, ConcurrentRead, PhaseHashTable};
use rayon::prelude::*;

use crate::suffix_array::{lcp_kasai, suffix_array};

/// Sentinel parent for the root.
const NO_PARENT: u32 = u32::MAX;

/// One suffix-tree node.
#[derive(Clone, Copy, Debug)]
pub struct Node {
    /// Parent node id ([`NO_PARENT`] for the root).
    pub parent: u32,
    /// String depth: length of the path label from the root.
    pub depth: u32,
    /// A suffix starting position whose path passes through this node
    /// (used to read edge labels out of the text).
    pub repr: u32,
}

/// A suffix tree over `text`, children in a phase-concurrent table `T`.
pub struct SuffixTree<'a, T> {
    /// The indexed text.
    pub text: &'a [u8],
    /// Node arena; node 0 is the root.
    pub nodes: Vec<Node>,
    /// Edge list as `(parent, first byte, child)`.
    edges: Vec<(u32, u8, u32)>,
    children: T,
}

impl<'a, T: PhaseHashTable<KvPair<KeepMin>>> SuffixTree<'a, T> {
    /// Builds the suffix tree of `text`. `make_table(log2)` supplies
    /// the child table (sized to twice the node count, rounded up —
    /// the paper's Table 5 setup).
    pub fn build(text: &'a [u8], make_table: impl FnOnce(u32) -> T) -> Self {
        let (nodes, edges) = Self::skeleton(text);
        assert!(
            nodes.len() < (1usize << 23),
            "text too large: node ids must fit 23 bits for the packed child key"
        );
        let log2 = (2 * edges.len().max(2))
            .next_power_of_two()
            .trailing_zeros();
        let mut children = make_table(log2);
        Self::insert_edges(&mut children, &edges);
        SuffixTree {
            text,
            nodes,
            edges,
            children,
        }
    }

    /// The parallel insert phase, separated out so benchmarks can time
    /// it alone (Table 5(a)).
    pub fn insert_edges(table: &mut T, edges: &[(u32, u8, u32)]) {
        let ins = table.begin_insert();
        edges
            .par_iter()
            .with_min_len(512)
            .for_each(|&(parent, byte, child)| {
                ins.insert(KvPair::new(Self::child_key(parent, byte), child));
            });
    }

    /// The edge list (for rebuilding tables in benchmarks).
    pub fn edges(&self) -> &[(u32, u8, u32)] {
        &self.edges
    }

    #[inline]
    fn child_key(node: u32, byte: u8) -> u32 {
        ((node + 1) << 8) | byte as u32
    }

    /// Builds (nodes, edges) from SA + LCP with the stack algorithm.
    fn skeleton(text: &[u8]) -> (Vec<Node>, Vec<(u32, u8, u32)>) {
        let n = text.len();
        let mut nodes = vec![Node {
            parent: NO_PARENT,
            depth: 0,
            repr: 0,
        }];
        let mut edges: Vec<(u32, u8, u32)> = Vec::with_capacity(2 * n);
        if n == 0 {
            return (nodes, edges);
        }
        let sa = suffix_array(text);
        let lcp = lcp_kasai(text, &sa);

        // Stack of node ids with strictly increasing depth (rightmost
        // path of the partially built tree). Edges to parents are
        // emitted when a node's parent becomes final (i.e. when it is
        // popped, or at the end).
        let mut stack: Vec<u32> = vec![0];
        let mut pending_parent: Vec<u32> = vec![NO_PARENT]; // parallel to `nodes`

        for j in 0..n {
            let l = if j == 0 { 0 } else { lcp[j] };
            let mut last_popped: Option<u32> = None;
            while nodes[*stack.last().unwrap() as usize].depth > l {
                let popped = stack.pop().unwrap();
                // Its parent is now the top (possibly adjusted below).
                last_popped = Some(popped);
            }
            let top = *stack.last().unwrap();
            let attach_to = if nodes[top as usize].depth == l {
                if let Some(mid) = last_popped {
                    pending_parent[mid as usize] = top;
                }
                top
            } else {
                // Create an internal node at depth l between top and
                // the popped subtree.
                let mid = last_popped.expect("internal node creation requires a popped child");
                let v = nodes.len() as u32;
                nodes.push(Node {
                    parent: NO_PARENT,
                    depth: l,
                    repr: nodes[mid as usize].repr,
                });
                pending_parent.push(top);
                pending_parent[mid as usize] = v;
                stack.push(v);
                v
            };
            // Add the leaf for suffix sa[j].
            let leaf = nodes.len() as u32;
            nodes.push(Node {
                parent: NO_PARENT,
                depth: (n - sa[j] as usize) as u32,
                repr: sa[j],
            });
            pending_parent.push(attach_to);
            stack.push(leaf);
        }
        // Finalize parents and emit edges.
        for id in 1..nodes.len() as u32 {
            let p = pending_parent[id as usize];
            debug_assert_ne!(p, NO_PARENT, "orphan node {id}");
            nodes[id as usize].parent = p;
            let first = text[(nodes[id as usize].repr + nodes[p as usize].depth) as usize];
            edges.push((p, first, id));
        }
        (nodes, edges)
    }

    /// Searches for `pattern`; returns the starting position of one
    /// occurrence in the text, or `None`.
    pub fn search(&mut self, pattern: &[u8]) -> Option<u32> {
        let reader = self.children.begin_read();
        Self::search_with(self.text, &self.nodes, &reader, pattern)
    }

    /// Number of occurrences of `pattern` in the text: locate the node
    /// whose subtree covers the pattern, then return its leaf count
    /// (precomputed, so counting is as cheap as a search).
    pub fn count_occurrences(&mut self, pattern: &[u8]) -> usize {
        if pattern.is_empty() {
            return self.text.len();
        }
        let leaf_counts = self.leaf_counts();
        let reader = self.children.begin_read();
        let Some(node) = Self::locate_node(self.text, &self.nodes, &reader, pattern) else {
            return 0;
        };
        leaf_counts[node as usize]
    }

    /// Subtree leaf counts (computed once, cached).
    fn leaf_counts(&mut self) -> Vec<usize> {
        // Leaves are nodes that never appear as a parent. Suffixes that
        // are prefixes of other suffixes yield "leaves with children";
        // those still represent exactly one occurrence each, so count a
        // node as a leaf occurrence iff its depth reaches the end of
        // its suffix.
        let n_text = self.text.len() as u32;
        let mut counts = vec![0usize; self.nodes.len()];
        for (id, node) in self.nodes.iter().enumerate() {
            if node.repr + node.depth == n_text && node.depth > 0 {
                counts[id] = 1;
            }
        }
        // Accumulate towards the root in decreasing-depth order
        // (parents are strictly shallower than children).
        let mut order: Vec<u32> = (1..self.nodes.len() as u32).collect();
        order.sort_unstable_by_key(|&id| std::cmp::Reverse(self.nodes[id as usize].depth));
        for id in order {
            let p = self.nodes[id as usize].parent;
            counts[p as usize] += counts[id as usize];
        }
        counts
    }

    /// Walks to the node whose path covers `pattern` (the locus node).
    fn locate_node<R: ConcurrentRead<KvPair<KeepMin>>>(
        text: &[u8],
        nodes: &[Node],
        reader: &R,
        pattern: &[u8],
    ) -> Option<u32> {
        let mut node = 0u32;
        let mut matched = 0usize;
        loop {
            let next = reader.find(KvPair::new(Self::child_key(node, pattern[matched]), 0))?;
            let child = next.value;
            let c = &nodes[child as usize];
            let start = c.repr as usize + matched;
            let edge_len = (c.depth - nodes[node as usize].depth) as usize;
            let take = edge_len.min(pattern.len() - matched);
            if text[start..start + take] != pattern[matched..matched + take] {
                return None;
            }
            matched += take;
            if matched == pattern.len() {
                return Some(child);
            }
            node = child;
        }
    }

    /// Search through an explicit read handle, so callers can run many
    /// searches concurrently within one find phase (Table 5(b)).
    pub fn search_with<R: ConcurrentRead<KvPair<KeepMin>>>(
        text: &[u8],
        nodes: &[Node],
        reader: &R,
        pattern: &[u8],
    ) -> Option<u32> {
        if pattern.is_empty() {
            return Some(0);
        }
        let mut node = 0u32; // root
        let mut matched = 0usize;
        loop {
            let next = reader.find(KvPair::new(Self::child_key(node, pattern[matched]), 0))?;
            let child = next.value;
            let c = &nodes[child as usize];
            let start = c.repr as usize + matched;
            let edge_len = (c.depth - nodes[node as usize].depth) as usize;
            let take = edge_len.min(pattern.len() - matched);
            if text[start..start + take] != pattern[matched..matched + take] {
                return None;
            }
            matched += take;
            if matched == pattern.len() {
                return Some(c.repr);
            }
            node = child;
        }
    }

    /// Number of tree nodes (including the root and leaves).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phc_core::DetHashTable;

    type Det = DetHashTable<KvPair<KeepMin>>;

    fn build(text: &[u8]) -> SuffixTree<'_, Det> {
        SuffixTree::build(text, Det::new_pow2)
    }

    #[test]
    fn finds_all_substrings_banana() {
        let t = b"banana";
        let mut st = build(t);
        for i in 0..t.len() {
            for j in i + 1..=t.len() {
                let pat = &t[i..j];
                let hit = st.search(pat);
                assert!(hit.is_some(), "missing {:?}", std::str::from_utf8(pat));
                let pos = hit.unwrap() as usize;
                assert_eq!(&t[pos..pos + pat.len()], pat);
            }
        }
    }

    #[test]
    fn rejects_non_substrings() {
        let mut st = build(b"banana");
        for pat in [&b"x"[..], b"bananaa", b"nanaz", b"ab"] {
            assert_eq!(st.search(pat), None, "{:?}", std::str::from_utf8(pat));
        }
    }

    #[test]
    fn works_on_synthetic_corpora() {
        for text in [
            phc_workloads::text::english_like(2000, 1),
            phc_workloads::text::retail_like(2000, 2),
            phc_workloads::text::protein_like(2000, 3),
        ] {
            let mut st = build(&text);
            // Every real substring of moderate length is found…
            let rng = phc_parutil::IndexRng::new(9);
            for q in 0..200u64 {
                let len = 1 + (rng.gen(q * 2) % 20) as usize;
                let start = (rng.gen(q * 2 + 1) % (text.len() as u64 - len as u64)) as usize;
                let pat = &text[start..start + len];
                let pos = st.search(pat).expect("substring not found") as usize;
                assert_eq!(&text[pos..pos + len], pat);
            }
            // …and a pattern with a byte outside the alphabet is not.
            assert_eq!(st.search(b"\x01\x02"), None);
        }
    }

    #[test]
    fn node_count_is_linear() {
        let text = phc_workloads::text::protein_like(5000, 4);
        let st = build(&text);
        // ≤ 2n nodes for a suffix tree (n leaves, < n internal).
        assert!(
            st.num_nodes() <= 2 * text.len() + 1,
            "nodes = {}",
            st.num_nodes()
        );
        assert!(st.num_nodes() > text.len());
    }

    #[test]
    fn count_occurrences_matches_naive() {
        let t = b"banana";
        let mut st = build(t);
        let naive = |pat: &[u8]| t.windows(pat.len()).filter(|w| *w == pat).count();
        for pat in [&b"a"[..], b"an", b"ana", b"na", b"banana", b"b", b"nan"] {
            assert_eq!(
                st.count_occurrences(pat),
                naive(pat),
                "{:?}",
                std::str::from_utf8(pat)
            );
        }
        assert_eq!(st.count_occurrences(b"xyz"), 0);
        assert_eq!(st.count_occurrences(b""), t.len());
    }

    #[test]
    fn count_occurrences_on_synthetic_text() {
        let text = phc_workloads::text::protein_like(4000, 8);
        let mut st = build(&text);
        for start in [0usize, 500, 2000] {
            for len in [2usize, 4, 7] {
                let pat = &text[start..start + len];
                let naive = text.windows(len).filter(|w| *w == pat).count();
                assert_eq!(st.count_occurrences(pat), naive);
            }
        }
    }

    #[test]
    fn empty_text() {
        let mut st = build(b"");
        assert_eq!(st.num_nodes(), 1);
        assert_eq!(st.search(b"a"), None);
        assert_eq!(st.search(b""), Some(0));
    }

    #[test]
    fn parallel_searches_share_a_read_phase() {
        let text = phc_workloads::text::english_like(3000, 5);
        let mut st = build(&text);
        let reader = st.children.begin_read();
        let hits: Vec<Option<u32>> = (0..100usize)
            .into_par_iter()
            .map(|q| {
                let start = (q * 13) % (text.len() - 8);
                SuffixTree::<Det>::search_with(st.text, &st.nodes, &reader, &text[start..start + 8])
            })
            .collect();
        assert!(hits.iter().all(|h| h.is_some()));
    }
}
