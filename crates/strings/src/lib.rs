//! Suffix trees backed by phase-concurrent hash tables
//! (paper §5; Table 5).
//!
//! "To allow for expected constant time look-ups, a hash table is used
//! to store the children of each internal node" — the insert phase
//! (tree construction) and the find phase (pattern search) are
//! naturally separated, which is exactly the phase-concurrency the
//! table provides.
//!
//! Pipeline, all built here from scratch:
//!
//! * [`suffix_array`] — prefix-doubling suffix array plus Kasai LCP;
//! * [`suffix_tree`] — tree skeleton from SA+LCP (stack construction),
//!   child edges inserted **in parallel** into a phase-concurrent hash
//!   table keyed by `(node, first byte)`; searches walk the tree with
//!   hash finds.

#![warn(missing_docs)]

pub mod suffix_array;
pub mod suffix_tree;

pub use suffix_array::{lcp_kasai, suffix_array};
pub use suffix_tree::SuffixTree;
