//! Deterministic reservations (Blelloch, Fineman, Gibbons & Shun,
//! PPoPP 2012).
//!
//! A *speculative for*: iterations carry priorities (their indices);
//! each round takes a prefix of the remaining iterations, runs all
//! their `reserve` steps in parallel (typically priority-writes into
//! shared slots), then runs `commit` for those whose reservations held.
//! Failed iterations retry in the next round, in order. Because
//! conflicts always resolve in favour of the lowest index, the sequence
//! of committed iterations — and thus the output — is identical to some
//! fixed sequential order, regardless of parallel scheduling. The
//! paper's Delaunay refinement, spanning forest, and maximal matching
//! are all instances.

use rayon::prelude::*;

/// One speculative iteration space.
pub trait Reservable: Sync {
    /// Phase 0 for iteration `i`: reset the reservation slots this
    /// iteration will write, so stale winners from earlier rounds
    /// cannot block progress. Runs for the whole batch before any
    /// `reserve`. Racing resets are fine — every participant writes
    /// the same "empty" value. Default: nothing to reset.
    fn prepare(&self, _i: usize) {}

    /// Phase 1 for iteration `i`: attempt to reserve the shared state
    /// it needs (use priority writes keyed by `i`). Return `false` to
    /// give up on this iteration permanently (e.g. it became moot).
    fn reserve(&self, i: usize) -> bool;

    /// Phase 2 for iteration `i` (runs only if `reserve` returned
    /// `true`): check the reservations stuck and perform the mutation.
    /// Return `true` on success; `false` re-queues `i` for the next
    /// round.
    fn commit(&self, i: usize) -> bool;
}

/// Runs iterations `0..n` speculatively with round size
/// `granularity`. Returns the number of rounds executed.
pub fn speculative_for<R: Reservable>(r: &R, n: usize, granularity: usize) -> usize {
    let items: Vec<usize> = (0..n).collect();
    speculative_for_items(r, items, granularity)
}

/// [`speculative_for`] over an explicit (priority-ordered) item list.
pub fn speculative_for_items<R: Reservable>(
    r: &R,
    mut items: Vec<usize>,
    granularity: usize,
) -> usize {
    assert!(granularity > 0);
    let mut rounds = 0usize;
    while !items.is_empty() {
        rounds += 1;
        let take = granularity.min(items.len());
        let batch = &items[..take];
        batch
            .par_iter()
            .with_min_len(64)
            .for_each(|&i| r.prepare(i));
        let reserved: Vec<bool> = batch
            .par_iter()
            .with_min_len(64)
            .map(|&i| r.reserve(i))
            .collect();
        let committed: Vec<bool> = batch
            .par_iter()
            .zip(reserved.par_iter())
            .with_min_len(64)
            .map(|(&i, &ok)| !ok || r.commit(i))
            .collect();
        let mut next: Vec<usize> = batch
            .iter()
            .zip(&committed)
            .filter_map(|(&i, &done)| (!done).then_some(i))
            .collect();
        next.extend_from_slice(&items[take..]);
        items = next;
    }
    rounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use phc_core::priority_write::write_min_usize;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Greedy maximal independent set on a path graph: iteration i
    /// joins the MIS iff no lower-priority neighbor did. Determinism:
    /// the result must equal the sequential greedy answer.
    struct PathMis {
        n: usize,
        reservation: Vec<AtomicUsize>,
        state: Vec<AtomicUsize>, // 0 = undecided, 1 = in MIS, 2 = out
    }

    impl PathMis {
        fn new(n: usize) -> Self {
            PathMis {
                n,
                reservation: (0..n).map(|_| AtomicUsize::new(usize::MAX)).collect(),
                state: (0..n).map(|_| AtomicUsize::new(0)).collect(),
            }
        }
        fn neighborhood(&self, i: usize) -> impl Iterator<Item = usize> {
            let lo = i.saturating_sub(1);
            let hi = (i + 1).min(self.n - 1);
            lo..=hi
        }
    }

    impl Reservable for PathMis {
        fn prepare(&self, i: usize) {
            // Clear stale reservations so a neighbor that was decided
            // OUT in an earlier round cannot block this one forever.
            if self.state[i].load(Ordering::Acquire) == 0 {
                for j in self.neighborhood(i) {
                    self.reservation[j].store(usize::MAX, Ordering::Relaxed);
                }
            }
        }
        fn reserve(&self, i: usize) -> bool {
            if self.state[i].load(Ordering::Acquire) != 0 {
                return false;
            }
            for j in self.neighborhood(i) {
                write_min_usize(&self.reservation[j], i);
            }
            true
        }
        fn commit(&self, i: usize) -> bool {
            if self.state[i].load(Ordering::Acquire) != 0 {
                return true;
            }
            let won = self.neighborhood(i).all(|j| {
                self.reservation[j].load(Ordering::Acquire) == i
                    || self.state[j].load(Ordering::Acquire) != 0
            });
            if won {
                self.state[i].store(1, Ordering::Release);
                for j in self.neighborhood(i) {
                    if j != i {
                        self.state[j].store(2, Ordering::Release);
                    }
                }
                true
            } else {
                // Undecided neighbors with lower priority exist; retry.
                // Reset our reservations so the winner can proceed.
                false
            }
        }
    }

    fn sequential_greedy_mis(n: usize) -> Vec<usize> {
        let mut state = vec![0u8; n];
        for i in 0..n {
            if state[i] == 0 {
                state[i] = 1;
                if i > 0 && state[i - 1] == 0 {
                    state[i - 1] = 2;
                }
                if i + 1 < n && state[i + 1] == 0 {
                    state[i + 1] = 2;
                }
            }
        }
        (0..n).filter(|&i| state[i] == 1).collect()
    }

    #[test]
    fn mis_matches_sequential_greedy() {
        let n = 5000;
        let mis = PathMis::new(n);
        let rounds = speculative_for(&mis, n, 512);
        assert!(rounds >= 1);
        let got: Vec<usize> = (0..n)
            .filter(|&i| mis.state[i].load(Ordering::Relaxed) == 1)
            .collect();
        assert_eq!(got, sequential_greedy_mis(n));
    }

    #[test]
    fn mis_deterministic_across_granularities() {
        let n = 3000;
        let run = |g: usize| {
            let mis = PathMis::new(n);
            speculative_for(&mis, n, g);
            (0..n)
                .filter(|&i| mis.state[i].load(Ordering::Relaxed) == 1)
                .collect::<Vec<usize>>()
        };
        // Determinism across round sizes is a stronger property than the
        // paper needs (it fixes granularity), but greedy MIS on a path
        // resolves conflicts purely by priority, so it holds here.
        assert_eq!(run(64), run(4096));
    }

    #[test]
    fn empty_and_single() {
        struct Trivial;
        impl Reservable for Trivial {
            fn reserve(&self, _i: usize) -> bool {
                true
            }
            fn commit(&self, _i: usize) -> bool {
                true
            }
        }
        assert_eq!(speculative_for(&Trivial, 0, 10), 0);
        assert_eq!(speculative_for(&Trivial, 1, 10), 1);
        assert_eq!(speculative_for(&Trivial, 100, 10), 10);
    }
}
