//! Connected components by repeated star contraction (the application
//! the paper cites for edge contraction: Shun, Dhulipala & Blelloch's
//! linear-work connectivity uses a deterministic hash table to remove
//! duplicate edges on contraction).
//!
//! Each round: vertices flip a deterministic coin (hashed from the
//! round and the vertex label); every tails vertex with at least one
//! heads neighbor hooks to its *minimum* heads neighbor (deterministic
//! conflict resolution); labels compress by pointer jumping; the edge
//! list is relabeled and deduplicated through a phase-concurrent hash
//! table. Rounds repeat until no inter-component edges remain.

use phc_core::phase::{ConcurrentInsert, PhaseHashTable};
use phc_parutil::hash64_pair;
use rayon::prelude::*;

use crate::edge_contraction::EdgeEntry;
use crate::union_find::UnionFind;
use phc_workloads::graphs::EdgeList;

/// Computes a component label per vertex (labels are the minimum
/// vertex id in each component — canonical and deterministic).
/// `make_table(log2)` supplies the dedup table for each contraction
/// round.
pub fn connected_components<T, F>(el: &EdgeList, mut make_table: F) -> Vec<u32>
where
    T: PhaseHashTable<EdgeEntry>,
    F: FnMut(u32) -> T,
{
    let n = el.n;
    let mut label: Vec<u32> = (0..n as u32).collect();
    let mut edges: Vec<(u32, u32)> = el.edges.iter().copied().filter(|&(u, v)| u != v).collect();
    let mut round = 0u64;
    while !edges.is_empty() {
        round += 1;
        assert!(round < 10_000, "contraction failed to converge");
        // Deterministic coin per current label.
        let heads = |v: u32| hash64_pair(round, v as u64) & 1 == 0;
        // Hook: tails vertex → min heads neighbor.
        let hook: Vec<u32> = {
            let mut hook: Vec<u32> = (0..n as u32).collect();
            // Min heads neighbor per tails vertex, in one sequential
            // pass over the edges (deterministic; the edge list shrinks
            // geometrically after the first rounds).
            let mut consider = |t: u32, h: u32| {
                if !heads(t) && heads(h) {
                    let slot = &mut hook[t as usize];
                    if *slot == t || h < *slot {
                        *slot = h;
                    }
                }
            };
            for &(u, v) in &edges {
                consider(u, v);
                consider(v, u);
            }
            hook
        };
        // Apply hooks to labels of *current representatives*.
        let mut next_label = label.clone();
        next_label
            .par_iter_mut()
            .enumerate()
            .with_min_len(1024)
            .for_each(|(v, l)| {
                let cur = label[v];
                // v's representative hooks wherever `hook` sends it.
                let h = hook[cur as usize];
                if h != cur {
                    *l = h;
                }
            });
        // Pointer-jump to full compression (hooks form depth-1 stars:
        // tails → heads, so one jump suffices; jump twice for safety).
        for _ in 0..2 {
            let snapshot = next_label.clone();
            next_label.par_iter_mut().with_min_len(1024).for_each(|l| {
                *l = snapshot[*l as usize];
            });
        }
        label = next_label;
        // Contract: relabel edges and dedup through the hash table.
        let log2 = (edges.len() * 2)
            .max(4)
            .next_power_of_two()
            .trailing_zeros();
        let mut table = make_table(log2);
        {
            let ins = table.begin_insert();
            edges.par_iter().with_min_len(512).for_each(|&(u, v)| {
                let (ru, rv) = (label[u as usize], label[v as usize]);
                if ru != rv {
                    ins.insert(EdgeEntry::new(ru, rv, 1));
                }
            });
        }
        edges = table.elements().iter().map(|e| (e.u(), e.v())).collect();
    }
    // Canonicalize: label every vertex with the min id of its tree.
    // The labels form a forest of depth ≥ 1; compress to roots, then
    // roots are canonical only up to hooking — normalize by min id per
    // root.
    let mut compressed = label.clone();
    loop {
        let snapshot = compressed.clone();
        let mut changed = false;
        for v in 0..n {
            let l = snapshot[compressed[v] as usize];
            if l != compressed[v] {
                compressed[v] = l;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let mut min_of_root = vec![u32::MAX; n];
    for v in 0..n as u32 {
        let r = compressed[v as usize] as usize;
        min_of_root[r] = min_of_root[r].min(v);
    }
    (0..n)
        .map(|v| min_of_root[compressed[v] as usize])
        .collect()
}

/// Union-find reference for validation.
pub fn connected_components_reference(el: &EdgeList) -> Vec<u32> {
    let uf = UnionFind::new(el.n);
    for &(u, v) in &el.edges {
        let (ru, rv) = (uf.find(u), uf.find(v));
        if ru != rv {
            uf.link(ru, rv);
        }
    }
    let mut min_of_root = vec![u32::MAX; el.n];
    for v in 0..el.n as u32 {
        let r = uf.find(v) as usize;
        min_of_root[r] = min_of_root[r].min(v);
    }
    (0..el.n as u32)
        .map(|v| min_of_root[uf.find(v) as usize])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use phc_core::{ChainedHashTable, DetHashTable, NdHashTable};

    fn check(el: &EdgeList) {
        let expect = connected_components_reference(el);
        let got = connected_components(el, DetHashTable::<EdgeEntry>::new_pow2);
        assert_eq!(got, expect);
    }

    #[test]
    fn single_component_grid() {
        check(&phc_workloads::grid3d(6));
    }

    #[test]
    fn random_graph_components() {
        check(&phc_workloads::random_graph(2000, 2, 1));
    }

    #[test]
    fn sparse_graph_many_components() {
        // Degree ~0.5: lots of small components.
        let el = EdgeList {
            n: 3000,
            edges: phc_workloads::random_graph(3000, 1, 5)
                .edges
                .into_iter()
                .step_by(2)
                .collect(),
        };
        check(&el);
    }

    #[test]
    fn empty_graph() {
        let el = EdgeList {
            n: 10,
            edges: vec![],
        };
        let got = connected_components(&el, DetHashTable::<EdgeEntry>::new_pow2);
        assert_eq!(got, (0..10u32).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic_across_runs_and_tables() {
        let el = phc_workloads::rmat(11, 6000, 3);
        let a = connected_components(&el, DetHashTable::<EdgeEntry>::new_pow2);
        let b = connected_components(&el, DetHashTable::<EdgeEntry>::new_pow2);
        assert_eq!(a, b);
        // Component labels are canonical (min id), so even the ND
        // tables must agree on the final labeling.
        let nd = connected_components(&el, NdHashTable::<EdgeEntry>::new_pow2);
        let ch = connected_components(&el, ChainedHashTable::<EdgeEntry>::new_pow2_cr);
        assert_eq!(a, nd);
        assert_eq!(a, ch);
    }
}
