//! Breadth-first search (paper §5, Figure 2; Table 7).
//!
//! Three implementations, matching the paper's comparison:
//!
//! * [`serial_bfs`] — textbook queue BFS (the `serial` row);
//! * [`array_bfs`] — deterministic parallel BFS that materializes each
//!   next frontier into a pre-allocated array segment per frontier
//!   vertex, then packs (the `array` row);
//! * [`hash_bfs`] — the paper's Figure 2: winners of a `WriteMin` on
//!   the parent slot insert the neighbor into a phase-concurrent hash
//!   table, and the next frontier is simply `elements()` (generic over
//!   the table implementation, so Table 7's per-table rows all run
//!   through this one function).
//!
//! Both parallel variants resolve multi-parent races with `WriteMin`,
//! so they produce the *same* deterministic parent array: each reached
//! vertex's parent is the minimum frontier vertex pointing at it.

use std::sync::atomic::{AtomicI64, Ordering};

use phc_core::entry::U64Key;
use phc_core::phase::{ConcurrentInsert, PhaseHashTable};
use phc_parutil::scan_exclusive;
use rayon::prelude::*;

use crate::graph::Graph;

/// Sentinel for unreachable vertices in the returned parent array.
pub const UNREACHED: i64 = i64::MAX;

/// Visited vertices are stored as `-(parent + 2)`: always negative, so
/// any candidate parent (≥ 0) loses the `WriteMin`, and distinguishable
/// from the `UNREACHED` sentinel.
#[inline]
fn encode_visited(parent: i64) -> i64 {
    -(parent + 2)
}

#[inline]
fn decode_visited(enc: i64) -> i64 {
    -enc - 2
}

/// Serial BFS; returns the parent array (`parents[r] == r`,
/// [`UNREACHED`] for unreachable vertices).
pub fn serial_bfs(g: &Graph, r: usize) -> Vec<i64> {
    let n = g.num_vertices();
    let mut parents = vec![UNREACHED; n];
    parents[r] = r as i64;
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(r as u32);
    while let Some(v) = queue.pop_front() {
        for &u in g.neighbors(v as usize) {
            if parents[u as usize] == UNREACHED {
                parents[u as usize] = v as i64;
                queue.push_back(u);
            }
        }
    }
    parents
}

/// Deterministic parallel array-based BFS (paper §5, the first method):
/// `WriteMin` chooses parents; each frontier vertex copies the
/// neighbors it won into its segment of a pre-sized array, which is
/// then packed into the next frontier.
pub fn array_bfs(g: &Graph, r: usize) -> Vec<i64> {
    let n = g.num_vertices();
    let parents: Vec<AtomicI64> = (0..n).map(|_| AtomicI64::new(UNREACHED)).collect();
    parents[r].store(encode_visited(r as i64), Ordering::Relaxed);
    let mut frontier: Vec<u32> = vec![r as u32];
    while !frontier.is_empty() {
        let degs: Vec<usize> = frontier.iter().map(|&v| g.degree(v as usize)).collect();
        let (offsets, total) = scan_exclusive(&degs);
        // Phase 1: compete for parenthood.
        frontier.par_iter().with_min_len(64).for_each(|&v| {
            for &u in g.neighbors(v as usize) {
                // Visited vertices hold negative values and never lose.
                write_min_i64(&parents[u as usize], v as i64);
            }
        });
        // Phase 2: winners copy their children into their segment.
        let mut out: Vec<i64> = vec![-1; total];
        let out_slices = split_segments(&mut out, &offsets, &degs);
        frontier
            .par_iter()
            .zip(out_slices)
            .with_min_len(64)
            .for_each(|(&v, seg)| {
                let nghs = g.neighbors(v as usize);
                for (k, &u) in nghs.iter().enumerate() {
                    // Skip duplicate parallel edges (lists are sorted,
                    // so duplicates are adjacent): a vertex must enter
                    // the frontier exactly once.
                    if k > 0 && nghs[k - 1] == u {
                        continue;
                    }
                    if parents[u as usize].load(Ordering::Acquire) == v as i64 {
                        seg[k] = u as i64;
                    }
                }
            });
        // Pack and mark visited.
        frontier = phc_parutil::pack_with(&out, |&x| (x >= 0).then_some(x as u32));
        frontier.par_iter().with_min_len(256).for_each(|&u| {
            let p = parents[u as usize].load(Ordering::Relaxed);
            parents[u as usize].store(encode_visited(p), Ordering::Relaxed);
        });
    }
    decode_parents(parents)
}

/// Hash-table BFS, exactly the paper's Figure 2, generic over the
/// phase-concurrent table. Returns the same parent array as
/// [`array_bfs`].
pub fn hash_bfs<T, F>(g: &Graph, r: usize, mut make_table: F) -> Vec<i64>
where
    T: PhaseHashTable<U64Key>,
    F: FnMut(u32) -> T,
{
    let n = g.num_vertices();
    let parents: Vec<AtomicI64> = (0..n).map(|_| AtomicI64::new(UNREACHED)).collect();
    parents[r].store(encode_visited(r as i64), Ordering::Relaxed);
    let mut frontier: Vec<u32> = vec![r as u32];
    while !frontier.is_empty() {
        let sum_deg: usize = frontier.iter().map(|&v| g.degree(v as usize)).sum();
        // Table sized to the sum of frontier degrees rounded up to a
        // power of two (paper §6), plus one bit so it can never be
        // completely full.
        let log2 = (sum_deg.max(2) + 1).next_power_of_two().trailing_zeros();
        let mut table = make_table(log2);
        {
            let ins = table.begin_insert();
            frontier.par_iter().with_min_len(64).for_each(|&v| {
                for &u in g.neighbors(v as usize) {
                    if write_min_i64(&parents[u as usize], v as i64) {
                        // Keys are u+1 (0 is the tables' empty sentinel).
                        ins.insert(U64Key::new(u as u64 + 1));
                    }
                }
            });
        }
        let elems = table.elements();
        frontier = elems.iter().map(|k| (k.0 - 1) as u32).collect();
        frontier.par_iter().with_min_len(256).for_each(|&u| {
            let p = parents[u as usize].load(Ordering::Relaxed);
            parents[u as usize].store(encode_visited(p), Ordering::Relaxed);
        });
    }
    decode_parents(parents)
}

/// `WriteMin` on an `i64` slot; visited (negative) entries always win.
#[inline]
fn write_min_i64(loc: &AtomicI64, val: i64) -> bool {
    let mut cur = loc.load(Ordering::Relaxed);
    while val < cur {
        match loc.compare_exchange_weak(cur, val, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => return true,
            Err(actual) => cur = actual,
        }
    }
    false
}

fn decode_parents(parents: Vec<AtomicI64>) -> Vec<i64> {
    parents
        .into_iter()
        .map(|p| {
            let v = p.into_inner();
            if v == UNREACHED {
                UNREACHED
            } else {
                debug_assert!(v < 0, "unvisited-but-written vertex survived: {v}");
                decode_visited(v)
            }
        })
        .collect()
}

/// Splits `out` into per-frontier-vertex segments of the given sizes.
fn split_segments<'a>(out: &'a mut [i64], offsets: &[usize], degs: &[usize]) -> Vec<&'a mut [i64]> {
    let mut segs = Vec::with_capacity(degs.len());
    let mut rest = out;
    let mut consumed = 0usize;
    for (&off, &d) in offsets.iter().zip(degs) {
        debug_assert_eq!(off, consumed);
        let (head, tail) = rest.split_at_mut(d);
        segs.push(head);
        rest = tail;
        consumed += d;
    }
    segs
}

/// BFS level (distance) of every vertex given a parent array — handy
/// for comparing implementations that choose different parents.
pub fn levels_from_parents(parents: &[i64], r: usize) -> Vec<i64> {
    let n = parents.len();
    let mut level = vec![-1i64; n];
    level[r] = 0;
    // Iterate to fixpoint (parents form a forest, depth ≤ n).
    let mut changed = true;
    while changed {
        changed = false;
        for v in 0..n {
            if level[v] < 0 && parents[v] != UNREACHED {
                let p = parents[v] as usize;
                if level[p] >= 0 {
                    level[v] = level[p] + 1;
                    changed = true;
                }
            }
        }
    }
    level
}

#[cfg(test)]
mod tests {
    use super::*;
    use phc_core::{ChainedHashTable, CuckooHashTable, DetHashTable, NdHashTable};
    use phc_workloads::graphs::EdgeList;

    fn ring(n: usize) -> Graph {
        Graph::from_edges(&EdgeList {
            n,
            edges: (0..n as u32).map(|v| (v, (v + 1) % n as u32)).collect(),
        })
    }

    #[test]
    fn serial_on_ring() {
        let g = ring(10);
        let p = serial_bfs(&g, 0);
        assert_eq!(p[0], 0);
        assert_eq!(p[1], 0);
        assert_eq!(p[9], 0);
        assert_eq!(p[2], 1);
    }

    #[test]
    fn array_matches_hash_parents() {
        let g = Graph::from_edges(&phc_workloads::random_graph(2000, 5, 1));
        let a = array_bfs(&g, 0);
        let h = hash_bfs(&g, 0, DetHashTable::<U64Key>::new_pow2);
        assert_eq!(a, h);
    }

    #[test]
    fn all_tables_agree() {
        let g = Graph::from_edges(&phc_workloads::grid3d(8));
        let reference = hash_bfs(&g, 0, DetHashTable::<U64Key>::new_pow2);
        let nd = hash_bfs(&g, 0, NdHashTable::<U64Key>::new_pow2);
        let ck = hash_bfs(&g, 0, |log2| CuckooHashTable::<U64Key>::new_pow2(log2 + 1));
        let ch = hash_bfs(&g, 0, ChainedHashTable::<U64Key>::new_pow2_cr);
        // WriteMin fixes the parents regardless of the table used.
        assert_eq!(reference, nd);
        assert_eq!(reference, ck);
        assert_eq!(reference, ch);
    }

    #[test]
    fn levels_match_serial() {
        let g = Graph::from_edges(&phc_workloads::rmat(10, 6000, 2));
        let ps = serial_bfs(&g, 0);
        let pa = array_bfs(&g, 0);
        assert_eq!(levels_from_parents(&ps, 0), levels_from_parents(&pa, 0));
    }

    #[test]
    fn unreachable_marked() {
        let g = Graph::from_edges(&EdgeList {
            n: 4,
            edges: vec![(0, 1)],
        });
        let p = array_bfs(&g, 0);
        assert_eq!(p[2], UNREACHED);
        assert_eq!(p[3], UNREACHED);
        let h = hash_bfs(&g, 0, DetHashTable::<U64Key>::new_pow2);
        assert_eq!(p, h);
    }

    #[test]
    fn hash_bfs_is_run_to_run_deterministic() {
        let g = Graph::from_edges(&phc_workloads::rmat(11, 10_000, 5));
        let a = hash_bfs(&g, 3, DetHashTable::<U64Key>::new_pow2);
        for _ in 0..3 {
            let b = hash_bfs(&g, 3, DetHashTable::<U64Key>::new_pow2);
            assert_eq!(a, b);
        }
    }
}
