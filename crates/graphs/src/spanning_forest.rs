//! Spanning forest via deterministic reservations (paper §5; Table 8).
//!
//! Edges carry their index as priority. Each round, pending edges find
//! the components of their endpoints, reserve both component roots with
//! a priority write, and edges that won at least one of their roots
//! link that root and join the forest. The committed edge set equals
//! that of a fixed sequential greedy run — deterministic regardless of
//! scheduling.
//!
//! Two reservation stores, matching the paper's comparison:
//!
//! * [`array_spanning_forest`] — reservations in a plain array indexed
//!   by vertex id (the `array` row of Table 8);
//! * [`hash_spanning_forest`] — reservations in a phase-concurrent
//!   hash table keyed by root id (the per-table rows), which is what
//!   one would use when vertex ids are not small dense integers.

use std::sync::atomic::{AtomicU32, Ordering};

use phc_core::entry::{KeepMin, KvPair};
use phc_core::phase::{ConcurrentInsert, ConcurrentRead, PhaseHashTable};
use rayon::prelude::*;

use crate::union_find::UnionFind;
use phc_workloads::graphs::EdgeList;

/// Round size for the speculative loop.
const GRANULARITY: usize = 8192;

/// Sequential reference: greedy union-find in edge order.
pub fn serial_spanning_forest(el: &EdgeList) -> Vec<usize> {
    let uf = UnionFind::new(el.n);
    let mut forest = Vec::new();
    for (i, &(u, v)) in el.edges.iter().enumerate() {
        let (ru, rv) = (uf.find(u), uf.find(v));
        if ru != rv {
            uf.link(ru, rv);
            forest.push(i);
        }
    }
    forest
}

/// Deterministic parallel spanning forest with array reservations.
/// Returns the indices of the forest edges (ascending).
pub fn array_spanning_forest(el: &EdgeList) -> Vec<usize> {
    let n = el.n;
    let uf = UnionFind::new(n);
    let reservations: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(u32::MAX)).collect();
    let in_forest: Vec<AtomicU32> = (0..el.edges.len()).map(|_| AtomicU32::new(0)).collect();

    let mut pending: Vec<usize> = (0..el.edges.len()).collect();
    while !pending.is_empty() {
        let take = GRANULARITY.min(pending.len());
        let batch = &pending[..take];
        // Roots at round start (also used to reset reservations).
        let roots: Vec<(u32, u32)> = batch
            .par_iter()
            .with_min_len(64)
            .map(|&i| {
                let (u, v) = el.edges[i];
                (uf.find(u), uf.find(v))
            })
            .collect();
        batch
            .par_iter()
            .zip(roots.par_iter())
            .with_min_len(64)
            .for_each(|(_, &(ru, rv))| {
                reservations[ru as usize].store(u32::MAX, Ordering::Relaxed);
                reservations[rv as usize].store(u32::MAX, Ordering::Relaxed);
            });
        // Reserve both roots with the edge priority.
        batch
            .par_iter()
            .zip(roots.par_iter())
            .with_min_len(64)
            .for_each(|(&i, &(ru, rv))| {
                if ru != rv {
                    phc_core::write_min_u32(&reservations[ru as usize], i as u32);
                    phc_core::write_min_u32(&reservations[rv as usize], i as u32);
                }
            });
        // Commit: an edge that owns one of its roots links it.
        let committed: Vec<bool> = batch
            .par_iter()
            .zip(roots.par_iter())
            .with_min_len(64)
            .map(|(&i, &(ru, rv))| {
                if ru == rv {
                    return true; // already connected; drop silently
                }
                if reservations[ru as usize].load(Ordering::Acquire) == i as u32 {
                    uf.link(ru, rv);
                } else if reservations[rv as usize].load(Ordering::Acquire) == i as u32 {
                    uf.link(rv, ru);
                } else {
                    return false; // lost both; retry next round
                }
                in_forest[i].store(1, Ordering::Release);
                true
            })
            .collect();
        let mut next: Vec<usize> = batch
            .iter()
            .zip(&committed)
            .filter_map(|(&i, &done)| (!done).then_some(i))
            .collect();
        next.extend_from_slice(&pending[take..]);
        pending = next;
    }
    (0..el.edges.len())
        .filter(|&i| in_forest[i].load(Ordering::Relaxed) == 1)
        .collect()
}

/// Deterministic parallel spanning forest with reservations kept in a
/// phase-concurrent hash table (keys are root ids, values are edge
/// priorities, combined with `min` — the paper's priority rule).
pub fn hash_spanning_forest<T, F>(el: &EdgeList, mut make_table: F) -> Vec<usize>
where
    T: PhaseHashTable<KvPair<KeepMin>>,
    F: FnMut(u32) -> T,
{
    let n = el.n;
    let uf = UnionFind::new(n);
    let in_forest: Vec<AtomicU32> = (0..el.edges.len()).map(|_| AtomicU32::new(0)).collect();
    // Table sized to twice the vertex count (paper §6, Table 8 setup).
    let log2 = (2 * n.max(2)).next_power_of_two().trailing_zeros();

    let mut pending: Vec<usize> = (0..el.edges.len()).collect();
    while !pending.is_empty() {
        let take = GRANULARITY.min(pending.len());
        let batch = &pending[..take];
        let roots: Vec<(u32, u32)> = batch
            .par_iter()
            .with_min_len(64)
            .map(|&i| {
                let (u, v) = el.edges[i];
                (uf.find(u), uf.find(v))
            })
            .collect();
        // Fresh table per round = free reservation reset.
        let mut table = make_table(log2);
        {
            let ins = table.begin_insert();
            batch
                .par_iter()
                .zip(roots.par_iter())
                .with_min_len(64)
                .for_each(|(&i, &(ru, rv))| {
                    if ru != rv {
                        // Keys are root+1 (0 is the empty sentinel).
                        ins.insert(KvPair::new(ru + 1, i as u32));
                        ins.insert(KvPair::new(rv + 1, i as u32));
                    }
                });
        }
        let committed: Vec<bool> = {
            let reader = table.begin_read();
            batch
                .par_iter()
                .zip(roots.par_iter())
                .with_min_len(64)
                .map(|(&i, &(ru, rv))| {
                    if ru == rv {
                        return true;
                    }
                    let owns = |root: u32| {
                        reader
                            .find(KvPair::new(root + 1, 0))
                            .is_some_and(|kv| kv.value == i as u32)
                    };
                    if owns(ru) {
                        uf.link(ru, rv);
                    } else if owns(rv) {
                        uf.link(rv, ru);
                    } else {
                        return false;
                    }
                    in_forest[i].store(1, Ordering::Release);
                    true
                })
                .collect()
        };
        let mut next: Vec<usize> = batch
            .iter()
            .zip(&committed)
            .filter_map(|(&i, &done)| (!done).then_some(i))
            .collect();
        next.extend_from_slice(&pending[take..]);
        pending = next;
    }
    (0..el.edges.len())
        .filter(|&i| in_forest[i].load(Ordering::Relaxed) == 1)
        .collect()
}

/// Validates that `forest` is a spanning forest of `el`: acyclic, and
/// spans exactly the components of the graph.
pub fn is_spanning_forest(el: &EdgeList, forest: &[usize]) -> bool {
    let check = UnionFind::new(el.n);
    for &i in forest {
        let (u, v) = el.edges[i];
        let (ru, rv) = (check.find(u), check.find(v));
        if ru == rv {
            return false; // cycle
        }
        check.link(ru, rv);
    }
    // Same component structure as the full graph?
    let full = UnionFind::new(el.n);
    for &(u, v) in &el.edges {
        let (ru, rv) = (full.find(u), full.find(v));
        if ru != rv {
            full.link(ru, rv);
        }
    }
    // Acyclic (checked above) + equal component counts ⇒ the forest
    // spans every component.
    full.num_components() == check.num_components()
}

#[cfg(test)]
mod tests {
    use super::*;
    use phc_core::{ChainedHashTable, CuckooHashTable, DetHashTable, NdHashTable};

    fn inputs() -> Vec<EdgeList> {
        vec![
            phc_workloads::grid3d(6),
            phc_workloads::random_graph(800, 5, 1),
            phc_workloads::rmat(10, 4000, 2),
        ]
    }

    #[test]
    fn serial_forest_valid() {
        for el in inputs() {
            let f = serial_spanning_forest(&el);
            assert!(is_spanning_forest(&el, &f));
        }
    }

    #[test]
    fn array_forest_valid_and_deterministic() {
        for el in inputs() {
            let a = array_spanning_forest(&el);
            assert!(is_spanning_forest(&el, &a));
            assert_eq!(a, array_spanning_forest(&el));
        }
    }

    #[test]
    fn hash_forest_valid_and_matches_array() {
        for el in inputs() {
            let a = array_spanning_forest(&el);
            let h = hash_spanning_forest(&el, DetHashTable::<KvPair<KeepMin>>::new_pow2);
            assert!(is_spanning_forest(&el, &h));
            // Both resolve every conflict by minimum edge priority with
            // identical round boundaries, so the forests coincide.
            assert_eq!(a, h);
        }
    }

    #[test]
    fn other_tables_produce_valid_forests() {
        let el = phc_workloads::random_graph(500, 5, 3);
        for f in [
            hash_spanning_forest(&el, NdHashTable::<KvPair<KeepMin>>::new_pow2),
            hash_spanning_forest(&el, CuckooHashTable::<KvPair<KeepMin>>::new_pow2),
            hash_spanning_forest(&el, ChainedHashTable::<KvPair<KeepMin>>::new_pow2_cr),
        ] {
            assert!(is_spanning_forest(&el, &f));
        }
    }

    #[test]
    fn forest_size_is_components() {
        let el = phc_workloads::grid3d(5); // connected torus
        let f = array_spanning_forest(&el);
        assert_eq!(f.len(), el.n - 1);
    }
}
