//! Graph applications of phase-concurrent hash tables (paper §5–6).
//!
//! Three of the paper's six applications live here, each in two
//! flavours — a direct array-addressing implementation and a
//! hash-table-backed one, so the benchmarks can reproduce the paper's
//! "cost of using a hash table instead of raw memory" comparison
//! (Tables 6–8):
//!
//! * [`bfs`] — breadth-first search (Figure 2 of the paper);
//! * [`spanning_forest`] — deterministic-reservations spanning forest;
//! * [`edge_contraction`] — relabel + deduplicate-with-combine.
//!
//! Shared substrates: [`graph`] (CSR adjacency), [`union_find`]
//! (concurrent union-find), and [`reservations`] (the deterministic
//! reservations speculative-for framework of Blelloch et al.,
//! PPoPP'12, which the paper's applications are built on).

#![warn(missing_docs)]

pub mod bfs;
pub mod connectivity;
pub mod edge_contraction;
pub mod graph;
pub mod reservations;
pub mod spanning_forest;
pub mod union_find;

pub use graph::Graph;
pub use union_find::UnionFind;
