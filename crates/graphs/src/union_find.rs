//! Concurrent union-find (disjoint sets).
//!
//! The spanning-forest and edge-contraction applications use union-find
//! inside deterministic reservations: `find` may run concurrently from
//! any thread; `link` is only ever called on a root that the calling
//! edge has exclusively reserved, which is what makes the concurrent
//! usage safe (at most one link per root per round).

use std::sync::atomic::{AtomicU32, Ordering};

/// A concurrent union-find over vertices `0..n`.
pub struct UnionFind {
    parent: Vec<AtomicU32>,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).map(AtomicU32::new).collect(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Root of `v`'s set, with path halving (safe concurrently: the
    /// halving CAS only ever shortcuts towards the root).
    pub fn find(&self, mut v: u32) -> u32 {
        loop {
            let p = self.parent[v as usize].load(Ordering::Acquire);
            if p == v {
                return v;
            }
            let gp = self.parent[p as usize].load(Ordering::Acquire);
            if p == gp {
                return p;
            }
            // Path halving.
            let _ = self.parent[v as usize].compare_exchange(
                p,
                gp,
                Ordering::AcqRel,
                Ordering::Acquire,
            );
            v = gp;
        }
    }

    /// Links root `r` under `other`'s tree. Caller must guarantee `r`
    /// is a root it exclusively owns this round (reservation
    /// discipline); debug builds check the root property.
    pub fn link(&self, r: u32, other: u32) {
        debug_assert_eq!(
            self.parent[r as usize].load(Ordering::Acquire),
            r,
            "link on non-root"
        );
        self.parent[r as usize].store(other, Ordering::Release);
    }

    /// Whether `u` and `v` are currently in the same set (exact only at
    /// quiescence).
    pub fn same_set(&self, u: u32, v: u32) -> bool {
        self.find(u) == self.find(v)
    }

    /// Number of distinct roots (quiescent).
    pub fn num_components(&self) -> usize {
        (0..self.parent.len() as u32)
            .filter(|&v| self.find(v) == v)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons() {
        let uf = UnionFind::new(10);
        for v in 0..10 {
            assert_eq!(uf.find(v), v);
        }
        assert_eq!(uf.num_components(), 10);
    }

    #[test]
    fn link_merges() {
        let uf = UnionFind::new(6);
        uf.link(0, 1);
        uf.link(2, 3);
        uf.link(uf.find(1), uf.find(3));
        assert!(uf.same_set(0, 3));
        assert!(!uf.same_set(0, 5));
        assert_eq!(uf.num_components(), 3);
    }

    #[test]
    fn long_chain_compresses() {
        let uf = UnionFind::new(1000);
        for v in 0..999u32 {
            uf.link(uf.find(v), v + 1);
        }
        assert_eq!(uf.find(0), uf.find(999));
        assert_eq!(uf.num_components(), 1);
    }

    #[test]
    fn concurrent_finds_are_safe() {
        use rayon::prelude::*;
        let uf = UnionFind::new(10_000);
        for v in 0..9999u32 {
            uf.link(uf.find(v), v + 1);
        }
        let roots: Vec<u32> = (0..10_000u32).into_par_iter().map(|v| uf.find(v)).collect();
        let r = roots[0];
        assert!(roots.iter().all(|&x| x == r));
    }
}
