//! Compressed sparse row (CSR) adjacency representation.

use phc_parutil::scan_exclusive;
use phc_workloads::graphs::EdgeList;
use rayon::prelude::*;

/// An undirected graph in CSR form (every edge stored in both
/// directions).
pub struct Graph {
    offsets: Vec<usize>,
    neighbors: Vec<u32>,
    n: usize,
}

impl Graph {
    /// Builds a symmetric CSR graph from an edge list (each input edge
    /// is inserted in both directions; parallel construction).
    pub fn from_edges(el: &EdgeList) -> Self {
        let n = el.n;
        // Directed copies of every edge.
        let mut degree = vec![0usize; n];
        // Count degrees (sequential: contention-free and simple; the
        // generators dominate construction cost anyway).
        for &(u, v) in &el.edges {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let (offsets_base, total) = scan_exclusive(&degree);
        let mut cursor = offsets_base.clone();
        let mut neighbors = vec![0u32; total];
        for &(u, v) in &el.edges {
            neighbors[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            neighbors[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        // Sort each adjacency list so the representation (and thus all
        // deterministic algorithms over it) is canonical.
        {
            let mut slices: Vec<&mut [u32]> = Vec::with_capacity(n);
            let mut rest: &mut [u32] = &mut neighbors;
            for &d in degree.iter().take(n) {
                let (head, tail) = rest.split_at_mut(d);
                slices.push(head);
                rest = tail;
            }
            slices
                .par_iter_mut()
                .with_min_len(64)
                .for_each(|s| s.sort_unstable());
        }
        let mut offsets = offsets_base;
        offsets.push(total);
        Graph {
            offsets,
            neighbors,
            n,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of directed edge records (2× undirected edges).
    #[inline]
    pub fn num_directed_edges(&self) -> usize {
        self.neighbors.len()
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Neighbors of `v` (sorted ascending).
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.neighbors[self.offsets[v]..self.offsets[v + 1]]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Graph {
        Graph::from_edges(&EdgeList {
            n: 4,
            edges: vec![(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)],
        })
    }

    #[test]
    fn degrees_and_neighbors() {
        let g = tiny();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_directed_edges(), 10);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.neighbors(0), &[1, 2, 3]);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn symmetric() {
        let g = tiny();
        for v in 0..g.num_vertices() {
            for &u in g.neighbors(v) {
                assert!(g.neighbors(u as usize).contains(&(v as u32)), "{u} <-> {v}");
            }
        }
    }

    #[test]
    fn isolated_vertices_ok() {
        let g = Graph::from_edges(&EdgeList {
            n: 5,
            edges: vec![(0, 1)],
        });
        assert_eq!(g.degree(4), 0);
        assert!(g.neighbors(4).is_empty());
    }

    #[test]
    fn from_generator() {
        let g = Graph::from_edges(&phc_workloads::grid3d(5));
        assert_eq!(g.num_vertices(), 125);
        // Torus: every vertex has degree 6.
        for v in 0..125 {
            assert_eq!(g.degree(v), 6, "vertex {v}");
        }
    }
}
