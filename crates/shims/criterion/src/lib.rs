//! In-repo stand-in for the `criterion` crate.
//!
//! The workspace builds without crates.io access, so the bench
//! harnesses link against this minimal wall-clock implementation of
//! the criterion surface they use: `Criterion::default().sample_size`,
//! `bench_function`, `Bencher::{iter, iter_batched}`, `BatchSize`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Reported statistics are the min/median/max of per-iteration wall
//! times over `sample_size` samples — no bootstrapping, outlier
//! rejection, or HTML reports.

use std::time::{Duration, Instant};

/// Opaque value barrier (re-export of `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost (accepted, not used).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs (one setup per measurement).
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// Benchmark driver: runs registered functions and prints timings.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark and prints `min median max` per iteration.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            times: Vec::new(),
        };
        f(&mut b);
        let mut times = b.times;
        if times.is_empty() {
            println!("{id:<56} (no measurements)");
            return self;
        }
        times.sort_unstable();
        let median = times[times.len() / 2];
        println!(
            "{id:<56} time: [{} {} {}]",
            fmt_duration(times[0]),
            fmt_duration(median),
            fmt_duration(*times.last().expect("nonempty")),
        );
        self
    }

    /// Compatibility no-op (criterion finalizes summaries here).
    pub fn final_summary(&mut self) {}
}

/// Per-benchmark measurement handle.
pub struct Bencher {
    samples: usize,
    times: Vec<Duration>,
}

impl Bencher {
    /// Times `sample_size` runs of `routine`, auto-batching fast
    /// routines so each sample spans at least ~1 ms of wall time.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up + batch size calibration.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed();
        let batch = if once >= Duration::from_millis(1) {
            1
        } else {
            (Duration::from_millis(1).as_nanos() / once.as_nanos().max(1)) as u32 + 1
        };
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.times.push(t0.elapsed() / batch);
        }
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.times.push(t0.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.4} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.4} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.4} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Declares a benchmark group function (both criterion forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0u32;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        assert!(runs >= 3);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = Criterion::default().sample_size(2);
        c.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u8; 1024],
                |v| v.iter().map(|&x| x as u64).sum::<u64>(),
                BatchSize::LargeInput,
            )
        });
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(5)), "5 ns");
        assert!(fmt_duration(Duration::from_micros(5)).contains("µs"));
        assert!(fmt_duration(Duration::from_millis(5)).contains("ms"));
        assert!(fmt_duration(Duration::from_secs(5)).contains(" s"));
    }
}
