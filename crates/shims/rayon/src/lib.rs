//! In-repo stand-in for the `rayon` crate.
//!
//! This workspace builds in environments with no access to crates.io,
//! so the subset of rayon's API the workspace actually uses is
//! reimplemented here on top of `std::thread::scope`. The model is a
//! simplified version of rayon's producer/consumer architecture:
//!
//! * a [`Producer`] is an indexed, splittable source (slice, range,
//!   `Vec`, chunks, zip, enumerate, …);
//! * [`ParIter`] wraps a producer and executes by cutting it into at
//!   most `current_num_threads()` contiguous pieces (respecting
//!   `with_min_len`) and running each piece's sequential iterator on a
//!   scoped thread;
//! * adapters ([`Map`], [`Filter`], …) compose per-piece sequential
//!   iterator logic, so piece results come back in piece order and
//!   order-sensitive terminals (`collect`) behave exactly like rayon's
//!   indexed counterparts.
//!
//! Execution happens on a **persistent work-stealing worker pool**
//! (see [`pool`]): workers are spawned once (lazily) and parked when
//! idle; a parallel call publishes a job descriptor and participants
//! claim over-partitioned chunks from a shared atomic cursor, so load
//! imbalance is absorbed by stealing instead of blocking behind the
//! slowest fixed share. Chunks write results by index, which keeps
//! every order-sensitive terminal deterministic under stealing. The
//! pool width defaults to the machine's parallelism and can be pinned
//! once per process with the `PHC_THREADS` environment variable.
//!
//! Differences from real rayon, none observable by this workspace:
//! stealing is cursor-based rather than deque-based, and reductions do
//! not short-circuit across pieces.

use std::cell::Cell;

pub mod pool;

pub use pool::set_threads_for_test;

pub mod prelude {
    //! The traits needed to call parallel-iterator methods.
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, ParallelIterator, ParallelSlice,
        ParallelSliceMut,
    };
}

// ---------------------------------------------------------------------------
// Thread accounting: a thread-local "current pool width".
// ---------------------------------------------------------------------------

thread_local! {
    pub(crate) static POOL_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of threads parallel iterators will use on this thread:
/// the installed width, or the persistent pool's size (`PHC_THREADS`
/// or the machine's available parallelism).
pub fn current_num_threads() -> usize {
    POOL_THREADS
        .with(|c| c.get())
        .unwrap_or_else(pool::configured_pool_size)
}

/// Applies a pool width for the duration of `f`, restoring the
/// previous width afterwards (also on unwind).
fn with_width<R>(width: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            POOL_THREADS.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(POOL_THREADS.with(|c| c.replace(Some(width))));
    f()
}

/// A width-limited view of the persistent worker pool.
/// [`ThreadPool::install`] runs a closure *on* a pool worker with the
/// pool's width applied; parallel iterators under it claim chunks with
/// at most `num_threads` concurrent participants.
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// The width this pool was built with.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    /// Runs `f` on one of the persistent pool's worker threads with
    /// this pool's width installed, blocking until it completes.
    /// Called from inside a pool worker (nested `install`), it runs in
    /// place with the width swapped in and restored afterwards.
    pub fn install<R: Send>(&self, f: impl FnOnce() -> R + Send) -> R {
        let width = self.threads;
        if pool::on_worker() {
            return with_width(width, f);
        }
        let func = pool::SyncCell::new(Some(f));
        let out = pool::SyncCell::new(None);
        let chunk = |_i: usize| {
            // SAFETY: a one-shot job runs its single chunk exactly once.
            let f = unsafe { (*func.get()).take().expect("install closure ran twice") };
            let r = f();
            unsafe { *out.get() = Some(r) };
        };
        pool::run_oneshot(width, &chunk);
        out.into_inner().expect("install closure did not run")
    }
}

/// Builder matching `rayon::ThreadPoolBuilder`'s used surface.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    threads: Option<usize>,
}

/// Error type for [`ThreadPoolBuilder::build`] (never produced).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// Creates a builder with the default width.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of worker threads (0 = default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            threads: self.threads.unwrap_or_else(current_num_threads),
        })
    }
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let width = current_num_threads();
    if width <= 1 {
        return (a(), b());
    }
    let funcs = (pool::SyncCell::new(Some(a)), pool::SyncCell::new(Some(b)));
    let ra = pool::SyncCell::new(None);
    let rb = pool::SyncCell::new(None);
    let chunk = |i: usize| {
        // SAFETY: the cursor hands each chunk index to exactly one
        // participant, so each cell pair is touched by one thread.
        unsafe {
            if i == 0 {
                let f = (*funcs.0.get()).take().expect("join arm ran twice");
                *ra.get() = Some(f());
            } else {
                let f = (*funcs.1.get()).take().expect("join arm ran twice");
                *rb.get() = Some(f());
            }
        }
    };
    pool::run_job(2, width, &chunk);
    (
        ra.into_inner().expect("join arm did not run"),
        rb.into_inner().expect("join arm did not run"),
    )
}

// ---------------------------------------------------------------------------
// Producers: indexed splittable sources.
// ---------------------------------------------------------------------------

/// An indexed source of `len` items that can be split at an index and
/// turned into a sequential iterator.
pub trait Producer: Sized + Send {
    /// Item produced.
    type Item: Send;
    /// Whether no items remain.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Sequential iterator over one piece.
    type IntoIter: Iterator<Item = Self::Item>;

    /// Number of items.
    fn len(&self) -> usize;
    /// Splits into `[0, index)` and `[index, len)`.
    fn split_at(self, index: usize) -> (Self, Self);
    /// Sequential iteration over the whole piece.
    fn into_iter(self) -> Self::IntoIter;
}

/// Producer over `&[T]`.
pub struct SliceProducer<'a, T>(&'a [T]);

impl<'a, T: Sync> Producer for SliceProducer<'a, T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn len(&self) -> usize {
        self.0.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.0.split_at(index);
        (SliceProducer(l), SliceProducer(r))
    }
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

/// Producer over `&mut [T]`.
pub struct SliceMutProducer<'a, T>(&'a mut [T]);

impl<'a, T: Send> Producer for SliceMutProducer<'a, T> {
    type Item = &'a mut T;
    type IntoIter = std::slice::IterMut<'a, T>;
    fn len(&self) -> usize {
        self.0.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.0.split_at_mut(index);
        (SliceMutProducer(l), SliceMutProducer(r))
    }
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter_mut()
    }
}

/// Producer over an owned `Vec<T>`.
pub struct VecProducer<T>(Vec<T>);

impl<T: Send> Producer for VecProducer<T> {
    type Item = T;
    type IntoIter = std::vec::IntoIter<T>;
    fn len(&self) -> usize {
        self.0.len()
    }
    fn split_at(mut self, index: usize) -> (Self, Self) {
        let right = self.0.split_off(index);
        (self, VecProducer(right))
    }
    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

/// Producer over an integer range.
pub struct RangeProducer<T> {
    start: T,
    end: T,
}

macro_rules! range_producer {
    ($($t:ty),*) => {$(
        impl Producer for RangeProducer<$t> {
            type Item = $t;
            type IntoIter = std::ops::Range<$t>;
            fn len(&self) -> usize {
                if self.end > self.start { (self.end - self.start) as usize } else { 0 }
            }
            fn split_at(self, index: usize) -> (Self, Self) {
                let mid = self.start + index as $t;
                (
                    RangeProducer { start: self.start, end: mid },
                    RangeProducer { start: mid, end: self.end },
                )
            }
            fn into_iter(self) -> Self::IntoIter {
                self.start..self.end
            }
        }

        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            type Iter = ParIter<RangeProducer<$t>>;
            fn into_par_iter(self) -> Self::Iter {
                ParIter::new(RangeProducer { start: self.start, end: self.end })
            }
        }

        impl IntoParallelIterator for std::ops::RangeInclusive<$t> {
            type Item = $t;
            type Iter = ParIter<RangeProducer<$t>>;
            fn into_par_iter(self) -> Self::Iter {
                let (start, end) = (*self.start(), *self.end());
                let (start, end) =
                    if start > end { (start, start) } else { (start, end + 1) };
                ParIter::new(RangeProducer { start, end })
            }
        }
    )*};
}

range_producer!(u16, u32, u64, usize, i32, i64);

/// Producer of `&[T]` chunks.
pub struct ChunksProducer<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> Producer for ChunksProducer<'a, T> {
    type Item = &'a [T];
    type IntoIter = std::slice::Chunks<'a, T>;
    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let mid = (index * self.size).min(self.slice.len());
        let (l, r) = self.slice.split_at(mid);
        (
            ChunksProducer {
                slice: l,
                size: self.size,
            },
            ChunksProducer {
                slice: r,
                size: self.size,
            },
        )
    }
    fn into_iter(self) -> Self::IntoIter {
        self.slice.chunks(self.size)
    }
}

/// Producer of `&mut [T]` chunks.
pub struct ChunksMutProducer<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> Producer for ChunksMutProducer<'a, T> {
    type Item = &'a mut [T];
    type IntoIter = std::slice::ChunksMut<'a, T>;
    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let mid = (index * self.size).min(self.slice.len());
        let (l, r) = self.slice.split_at_mut(mid);
        (
            ChunksMutProducer {
                slice: l,
                size: self.size,
            },
            ChunksMutProducer {
                slice: r,
                size: self.size,
            },
        )
    }
    fn into_iter(self) -> Self::IntoIter {
        self.slice.chunks_mut(self.size)
    }
}

/// Producer zipping two producers (length = shorter side).
pub struct ZipProducer<A, B>(A, B);

impl<A: Producer, B: Producer> Producer for ZipProducer<A, B> {
    type Item = (A::Item, B::Item);
    type IntoIter = std::iter::Zip<A::IntoIter, B::IntoIter>;
    fn len(&self) -> usize {
        self.0.len().min(self.1.len())
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (al, ar) = self.0.split_at(index);
        let (bl, br) = self.1.split_at(index);
        (ZipProducer(al, bl), ZipProducer(ar, br))
    }
    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter().zip(self.1.into_iter())
    }
}

/// Producer pairing items with their global index.
pub struct EnumerateProducer<P> {
    base: P,
    offset: usize,
}

impl<P: Producer> Producer for EnumerateProducer<P> {
    type Item = (usize, P::Item);
    type IntoIter = std::iter::Zip<std::ops::Range<usize>, P::IntoIter>;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            EnumerateProducer {
                base: l,
                offset: self.offset,
            },
            EnumerateProducer {
                base: r,
                offset: self.offset + index,
            },
        )
    }
    fn into_iter(self) -> Self::IntoIter {
        let n = self.base.len();
        (self.offset..self.offset + n).zip(self.base.into_iter())
    }
}

/// Producer yielding the base in reverse order.
pub struct RevProducer<P>(P);

impl<P: Producer> Producer for RevProducer<P>
where
    P::IntoIter: DoubleEndedIterator,
{
    type Item = P::Item;
    type IntoIter = std::iter::Rev<P::IntoIter>;
    fn len(&self) -> usize {
        self.0.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let n = self.0.len();
        let (l, r) = self.0.split_at(n - index);
        (RevProducer(r), RevProducer(l))
    }
    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter().rev()
    }
}

/// Coerces a closure to the higher-ranked consumer signature used by
/// [`ParallelIterator::drive`]. Closures written with an annotated
/// `&mut dyn Iterator` argument infer one fixed lifetime and fail the
/// `for<'i>` bound; routing them through this identity function makes
/// inference adopt the higher-ranked signature.
fn seq<T, R, F>(f: F) -> F
where
    F: for<'i> Fn(&mut (dyn Iterator<Item = T> + 'i)) -> R + Sync,
{
    f
}

// ---------------------------------------------------------------------------
// The parallel iterator trait and its executor.
// ---------------------------------------------------------------------------

/// A parallel iterator: drives a consumer over ordered pieces.
pub trait ParallelIterator: Sized + Send {
    /// Item type.
    type Item: Send;

    /// Splits the underlying source into ordered pieces, runs
    /// `consumer` over each piece's sequential iterator (in parallel),
    /// and returns the per-piece results in piece order.
    fn drive<R, C>(self, consumer: &C) -> Vec<R>
    where
        R: Send,
        C: for<'i> Fn(&mut (dyn Iterator<Item = Self::Item> + 'i)) -> R + Sync;

    /// Propagates a minimum piece length to the source.
    fn set_min_len(&mut self, _n: usize) {}

    /// Requires pieces of at least `n` items (bounds thread overhead).
    fn with_min_len(mut self, n: usize) -> Self {
        self.set_min_len(n.max(1));
        self
    }

    /// Accepted for rayon compatibility; pieces are already maximal.
    fn with_max_len(self, _n: usize) -> Self {
        self
    }

    /// Maps each item.
    fn map<T, F>(self, f: F) -> Map<Self, F>
    where
        T: Send,
        F: Fn(Self::Item) -> T + Sync,
    {
        Map { base: self, f }
    }

    /// Keeps items matching the predicate.
    fn filter<F>(self, f: F) -> Filter<Self, F>
    where
        F: Fn(&Self::Item) -> bool + Sync,
    {
        Filter { base: self, f }
    }

    /// Maps and filters in one pass.
    fn filter_map<T, F>(self, f: F) -> FilterMap<Self, F>
    where
        T: Send,
        F: Fn(Self::Item) -> Option<T> + Sync,
    {
        FilterMap { base: self, f }
    }

    /// Flattens nested iterables (sequentially within each piece).
    fn flatten(self) -> Flatten<Self>
    where
        Self::Item: IntoIterator,
        <Self::Item as IntoIterator>::Item: Send,
    {
        Flatten { base: self }
    }

    /// Maps each item to an iterable and flattens (the iterable is
    /// consumed sequentially within each piece, as in rayon).
    fn flat_map_iter<T, U, F>(self, f: F) -> FlatMapIter<Self, F>
    where
        U: IntoIterator<Item = T>,
        T: Send,
        F: Fn(Self::Item) -> U + Sync,
    {
        FlatMapIter { base: self, f }
    }

    /// Copies referenced items.
    fn copied<'a, T>(self) -> Copied<Self>
    where
        T: Copy + Send + Sync + 'a,
        Self: ParallelIterator<Item = &'a T>,
    {
        Copied { base: self }
    }

    /// Clones referenced items.
    fn cloned<'a, T>(self) -> Cloned<Self>
    where
        T: Clone + Send + Sync + 'a,
        Self: ParallelIterator<Item = &'a T>,
    {
        Cloned { base: self }
    }

    /// Applies `op` to every item.
    fn for_each<F>(self, op: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        self.drive(&seq::<Self::Item, _, _>(|it| {
            for x in it {
                op(x);
            }
        }));
    }

    /// Number of items.
    fn count(self) -> usize {
        self.drive(&seq::<Self::Item, _, _>(|it| it.count()))
            .into_iter()
            .sum()
    }

    /// Sums the items.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + std::iter::Sum<S> + Send,
    {
        self.drive(&seq::<Self::Item, _, _>(|it| it.sum::<S>()))
            .into_iter()
            .sum()
    }

    /// Minimum item (first one on ties, like rayon's indexed min).
    fn min(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        self.drive(&seq::<Self::Item, _, _>(|it| {
            it.fold(None::<Self::Item>, |best, x| match best {
                Some(b) if b <= x => Some(b),
                _ => Some(x),
            })
        }))
        .into_iter()
        .flatten()
        .reduce(|a, b| if a <= b { a } else { b })
    }

    /// Maximum item (last one on ties, like rayon's indexed max).
    fn max(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        self.drive(&seq::<Self::Item, _, _>(|it| it.max()))
            .into_iter()
            .flatten()
            .reduce(|a, b| if b >= a { b } else { a })
    }

    /// Whether all items satisfy the predicate (no cross-piece
    /// short-circuit).
    fn all<F>(self, f: F) -> bool
    where
        F: Fn(Self::Item) -> bool + Sync,
    {
        self.drive(&seq::<Self::Item, _, _>(|it| {
            for x in it {
                if !f(x) {
                    return false;
                }
            }
            true
        }))
        .into_iter()
        .all(|b| b)
    }

    /// Whether any item satisfies the predicate.
    fn any<F>(self, f: F) -> bool
    where
        F: Fn(Self::Item) -> bool + Sync,
    {
        self.drive(&seq::<Self::Item, _, _>(|it| {
            for x in it {
                if f(x) {
                    return true;
                }
            }
            false
        }))
        .into_iter()
        .any(|b| b)
    }

    /// Reduces with an identity and an associative operation.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync,
    {
        self.drive(&seq::<Self::Item, _, _>(|it| it.fold(identity(), &op)))
            .into_iter()
            .fold(identity(), op)
    }

    /// Collects into a container.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Resulting iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParIter<VecProducer<T>>;
    fn into_par_iter(self) -> Self::Iter {
        ParIter::new(VecProducer(self))
    }
}

impl<'a, T: Sync + 'a> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    type Iter = ParIter<SliceProducer<'a, T>>;
    fn into_par_iter(self) -> Self::Iter {
        ParIter::new(SliceProducer(self))
    }
}

impl<'a, T: Sync + 'a> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    type Iter = ParIter<SliceProducer<'a, T>>;
    fn into_par_iter(self) -> Self::Iter {
        ParIter::new(SliceProducer(self))
    }
}

impl<'a, T: Send + 'a> IntoParallelIterator for &'a mut [T] {
    type Item = &'a mut T;
    type Iter = ParIter<SliceMutProducer<'a, T>>;
    fn into_par_iter(self) -> Self::Iter {
        ParIter::new(SliceMutProducer(self))
    }
}

impl<P: Producer> IntoParallelIterator for ParIter<P> {
    type Item = P::Item;
    type Iter = Self;
    fn into_par_iter(self) -> Self {
        self
    }
}

/// Collection construction from a parallel iterator.
pub trait FromParallelIterator<T: Send>: Sized {
    /// Builds the collection.
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self {
        let pieces = iter.drive(&seq::<T, _, _>(|it| it.collect::<Vec<T>>()));
        let mut out = Vec::with_capacity(pieces.iter().map(Vec::len).sum());
        for p in pieces {
            out.extend(p);
        }
        out
    }
}

impl<T: Send> FromParallelIterator<T> for String
where
    String: Extend<T> + FromIterator<T>,
{
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self {
        let pieces = iter.drive(&seq::<T, _, _>(|it| it.collect::<String>()));
        pieces.concat()
    }
}

impl<T, S> FromParallelIterator<T> for std::collections::HashSet<T, S>
where
    T: Send + Eq + std::hash::Hash,
    S: std::hash::BuildHasher + Default,
{
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self {
        let pieces = iter.drive(&seq::<T, _, _>(|it| it.collect::<Vec<T>>()));
        pieces.into_iter().flatten().collect()
    }
}

impl<K, V, S> FromParallelIterator<(K, V)> for std::collections::HashMap<K, V, S>
where
    K: Send + Eq + std::hash::Hash,
    V: Send,
    S: std::hash::BuildHasher + Default,
{
    fn from_par_iter<I: ParallelIterator<Item = (K, V)>>(iter: I) -> Self {
        let pieces = iter.drive(&seq::<(K, V), _, _>(|it| it.collect::<Vec<(K, V)>>()));
        pieces.into_iter().flatten().collect()
    }
}

// ---------------------------------------------------------------------------
// The source iterator and its executor.
// ---------------------------------------------------------------------------

/// A parallel iterator directly over a [`Producer`]; the only type
/// supporting index-preserving adapters (`zip`, `enumerate`, `rev`).
pub struct ParIter<P: Producer> {
    producer: P,
    min_len: usize,
}

impl<P: Producer> ParIter<P> {
    fn new(producer: P) -> Self {
        ParIter {
            producer,
            min_len: 1,
        }
    }

    /// Pairs items positionally with another indexed iterator.
    pub fn zip<Z, Q>(self, other: Z) -> ParIter<ZipProducer<P, Q>>
    where
        Q: Producer,
        Z: IntoParallelIterator<Iter = ParIter<Q>>,
    {
        ParIter {
            producer: ZipProducer(self.producer, other.into_par_iter().producer),
            min_len: self.min_len,
        }
    }

    /// Pairs items with their index.
    pub fn enumerate(self) -> ParIter<EnumerateProducer<P>> {
        ParIter {
            producer: EnumerateProducer {
                base: self.producer,
                offset: 0,
            },
            min_len: self.min_len,
        }
    }

    /// Reverses the iteration order.
    pub fn rev(self) -> ParIter<RevProducer<P>>
    where
        P::IntoIter: DoubleEndedIterator,
    {
        ParIter {
            producer: RevProducer(self.producer),
            min_len: self.min_len,
        }
    }
}

impl<P: Producer> ParallelIterator for ParIter<P> {
    type Item = P::Item;

    fn drive<R, C>(self, consumer: &C) -> Vec<R>
    where
        R: Send,
        C: for<'i> Fn(&mut (dyn Iterator<Item = Self::Item> + 'i)) -> R + Sync,
    {
        let len = self.producer.len();
        let width = current_num_threads();
        // Over-partition so participants that finish early steal the
        // tail instead of idling. Piece boundaries depend only on
        // (len, min_len, width) — never on scheduling — so per-piece
        // results are reproducible across runs and pool states.
        let max_pieces = len.div_ceil(self.min_len.max(1)).max(1);
        let pieces = if width <= 1 {
            1
        } else {
            (width * pool::OVERPARTITION).min(max_pieces)
        };
        if pieces <= 1 {
            return vec![consumer(&mut self.producer.into_iter())];
        }
        // Cut into `pieces` contiguous parts of near-equal size.
        let mut parts = Vec::with_capacity(pieces);
        let mut rest = self.producer;
        let mut remaining = len;
        for i in (1..pieces).rev() {
            let take = remaining.div_ceil(i + 1);
            let (l, r) = rest.split_at(take);
            parts.push(l);
            rest = r;
            remaining -= take;
        }
        parts.push(rest);
        let parts: Vec<pool::SyncCell<Option<P>>> = parts
            .into_iter()
            .map(|p| pool::SyncCell::new(Some(p)))
            .collect();
        let results: Vec<pool::SyncCell<Option<R>>> =
            (0..pieces).map(|_| pool::SyncCell::new(None)).collect();
        let chunk = |i: usize| {
            // SAFETY: the pool's cursor hands each chunk index to
            // exactly one participant, so cell `i` is touched by one
            // thread only; results land by index, making the output
            // independent of which worker ran the chunk.
            let part = unsafe { (*parts[i].get()).take().expect("piece ran twice") };
            let r = consumer(&mut part.into_iter());
            unsafe { *results[i].get() = Some(r) };
        };
        pool::run_job(pieces, width, &chunk);
        results
            .into_iter()
            .map(|c| c.into_inner().expect("piece did not run"))
            .collect()
    }

    fn set_min_len(&mut self, n: usize) {
        self.min_len = n;
    }
}

// ---------------------------------------------------------------------------
// Adapters.
// ---------------------------------------------------------------------------

/// See [`ParallelIterator::map`].
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, F, T> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    F: Fn(I::Item) -> T + Sync + Send,
    T: Send,
{
    type Item = T;

    fn drive<R, C>(self, consumer: &C) -> Vec<R>
    where
        R: Send,
        C: for<'i> Fn(&mut (dyn Iterator<Item = T> + 'i)) -> R + Sync,
    {
        let Map { base, f } = self;
        let f = &f;
        base.drive(&seq::<I::Item, _, _>(move |it| consumer(&mut it.map(f))))
    }

    fn set_min_len(&mut self, n: usize) {
        self.base.set_min_len(n);
    }
}

/// See [`ParallelIterator::filter`].
pub struct Filter<I, F> {
    base: I,
    f: F,
}

impl<I, F> ParallelIterator for Filter<I, F>
where
    I: ParallelIterator,
    F: Fn(&I::Item) -> bool + Sync + Send,
{
    type Item = I::Item;

    fn drive<R, C>(self, consumer: &C) -> Vec<R>
    where
        R: Send,
        C: for<'i> Fn(&mut (dyn Iterator<Item = I::Item> + 'i)) -> R + Sync,
    {
        let Filter { base, f } = self;
        let f = &f;
        base.drive(&seq::<I::Item, _, _>(move |it| {
            consumer(&mut it.filter(|x| f(x)))
        }))
    }

    fn set_min_len(&mut self, n: usize) {
        self.base.set_min_len(n);
    }
}

/// See [`ParallelIterator::filter_map`].
pub struct FilterMap<I, F> {
    base: I,
    f: F,
}

impl<I, F, T> ParallelIterator for FilterMap<I, F>
where
    I: ParallelIterator,
    F: Fn(I::Item) -> Option<T> + Sync + Send,
    T: Send,
{
    type Item = T;

    fn drive<R, C>(self, consumer: &C) -> Vec<R>
    where
        R: Send,
        C: for<'i> Fn(&mut (dyn Iterator<Item = T> + 'i)) -> R + Sync,
    {
        let FilterMap { base, f } = self;
        let f = &f;
        base.drive(&seq::<I::Item, _, _>(move |it| {
            consumer(&mut it.filter_map(f))
        }))
    }

    fn set_min_len(&mut self, n: usize) {
        self.base.set_min_len(n);
    }
}

/// See [`ParallelIterator::flatten`].
pub struct Flatten<I> {
    base: I,
}

impl<I> ParallelIterator for Flatten<I>
where
    I: ParallelIterator,
    I::Item: IntoIterator,
    <I::Item as IntoIterator>::Item: Send,
{
    type Item = <I::Item as IntoIterator>::Item;

    fn drive<R, C>(self, consumer: &C) -> Vec<R>
    where
        R: Send,
        C: for<'i> Fn(&mut (dyn Iterator<Item = Self::Item> + 'i)) -> R + Sync,
    {
        self.base
            .drive(&seq::<I::Item, _, _>(move |it| consumer(&mut it.flatten())))
    }

    fn set_min_len(&mut self, n: usize) {
        self.base.set_min_len(n);
    }
}

/// See [`ParallelIterator::flat_map_iter`].
pub struct FlatMapIter<I, F> {
    base: I,
    f: F,
}

impl<I, F, U, T> ParallelIterator for FlatMapIter<I, F>
where
    I: ParallelIterator,
    U: IntoIterator<Item = T>,
    T: Send,
    F: Fn(I::Item) -> U + Sync + Send,
{
    type Item = T;

    fn drive<R, C>(self, consumer: &C) -> Vec<R>
    where
        R: Send,
        C: for<'i> Fn(&mut (dyn Iterator<Item = T> + 'i)) -> R + Sync,
    {
        let FlatMapIter { base, f } = self;
        let f = &f;
        base.drive(&seq::<I::Item, _, _>(move |it| {
            consumer(&mut it.flat_map(f))
        }))
    }

    fn set_min_len(&mut self, n: usize) {
        self.base.set_min_len(n);
    }
}

/// See [`ParallelIterator::copied`].
pub struct Copied<I> {
    base: I,
}

impl<'a, I, T> ParallelIterator for Copied<I>
where
    I: ParallelIterator<Item = &'a T>,
    T: Copy + Send + Sync + 'a,
{
    type Item = T;

    fn drive<R, C>(self, consumer: &C) -> Vec<R>
    where
        R: Send,
        C: for<'i> Fn(&mut (dyn Iterator<Item = T> + 'i)) -> R + Sync,
    {
        self.base
            .drive(&seq::<&'a T, _, _>(move |it| consumer(&mut it.copied())))
    }

    fn set_min_len(&mut self, n: usize) {
        self.base.set_min_len(n);
    }
}

/// See [`ParallelIterator::cloned`].
pub struct Cloned<I> {
    base: I,
}

impl<'a, I, T> ParallelIterator for Cloned<I>
where
    I: ParallelIterator<Item = &'a T>,
    T: Clone + Send + Sync + 'a,
{
    type Item = T;

    fn drive<R, C>(self, consumer: &C) -> Vec<R>
    where
        R: Send,
        C: for<'i> Fn(&mut (dyn Iterator<Item = T> + 'i)) -> R + Sync,
    {
        self.base
            .drive(&seq::<&'a T, _, _>(move |it| consumer(&mut it.cloned())))
    }

    fn set_min_len(&mut self, n: usize) {
        self.base.set_min_len(n);
    }
}

// ---------------------------------------------------------------------------
// Slice extension traits.
// ---------------------------------------------------------------------------

/// `par_iter`/`par_chunks` on shared slices (and, via deref, `Vec`,
/// `Box<[T]>`, arrays).
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `&T`.
    fn par_iter(&self) -> ParIter<SliceProducer<'_, T>>;
    /// Parallel iterator over `&[T]` chunks of `size` (last may be
    /// shorter).
    fn par_chunks(&self, size: usize) -> ParIter<ChunksProducer<'_, T>>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<SliceProducer<'_, T>> {
        ParIter::new(SliceProducer(self))
    }
    fn par_chunks(&self, size: usize) -> ParIter<ChunksProducer<'_, T>> {
        assert!(size > 0, "chunk size must be positive");
        ParIter::new(ChunksProducer { slice: self, size })
    }
}

/// `par_iter_mut`/`par_chunks_mut`/parallel sorts on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over `&mut T`.
    fn par_iter_mut(&mut self) -> ParIter<SliceMutProducer<'_, T>>;
    /// Parallel iterator over `&mut [T]` chunks of `size`.
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<ChunksMutProducer<'_, T>>;
    /// Sorts by key (piece-sorted in parallel, then merged).
    fn par_sort_unstable_by_key<K, F>(&mut self, f: F)
    where
        K: Ord,
        F: Fn(&T) -> K + Sync;
    /// Sorts by comparator (piece-sorted in parallel, then merged).
    fn par_sort_unstable_by<F>(&mut self, f: F)
    where
        F: Fn(&T, &T) -> std::cmp::Ordering + Sync;
    /// Sorts naturally ordered items.
    fn par_sort_unstable(&mut self)
    where
        T: Ord;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIter<SliceMutProducer<'_, T>> {
        ParIter::new(SliceMutProducer(self))
    }

    fn par_chunks_mut(&mut self, size: usize) -> ParIter<ChunksMutProducer<'_, T>> {
        assert!(size > 0, "chunk size must be positive");
        ParIter::new(ChunksMutProducer { slice: self, size })
    }

    fn par_sort_unstable_by_key<K, F>(&mut self, f: F)
    where
        K: Ord,
        F: Fn(&T) -> K + Sync,
    {
        self.par_sort_unstable_by(|a, b| f(a).cmp(&f(b)));
    }

    fn par_sort_unstable_by<F>(&mut self, f: F)
    where
        F: Fn(&T, &T) -> std::cmp::Ordering + Sync,
    {
        par_merge_sort(self, &f);
    }

    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        self.par_sort_unstable_by(T::cmp);
    }
}

/// Recursive fork-join merge sort: halves sorted on separate threads,
/// then merged. Falls back to the sequential sort for small inputs.
fn par_merge_sort<T: Send, F>(v: &mut [T], cmp: &F)
where
    F: Fn(&T, &T) -> std::cmp::Ordering + Sync,
{
    const SEQ_CUTOFF: usize = 1 << 14;
    if v.len() <= SEQ_CUTOFF || current_num_threads() <= 1 {
        v.sort_unstable_by(cmp);
        return;
    }
    let mid = v.len() / 2;
    {
        let (lo, hi) = v.split_at_mut(mid);
        join(|| par_merge_sort(lo, cmp), || par_merge_sort(hi, cmp));
    }
    // Merge the sorted halves through a scratch vector of indices-free
    // moved items. `T: Send` but not `Copy`; use Vec<T> and ptr reads.
    let mut merged: Vec<T> = Vec::with_capacity(v.len());
    unsafe {
        let (mut i, mut j) = (0usize, mid);
        let base = v.as_ptr();
        while i < mid && j < v.len() {
            let take_left = cmp(&*base.add(i), &*base.add(j)) != std::cmp::Ordering::Greater;
            let idx = if take_left { &mut i } else { &mut j };
            merged.push(std::ptr::read(base.add(*idx)));
            *idx += 1;
        }
        while i < mid {
            merged.push(std::ptr::read(base.add(i)));
            i += 1;
        }
        while j < v.len() {
            merged.push(std::ptr::read(base.add(j)));
            j += 1;
        }
        std::ptr::copy_nonoverlapping(merged.as_ptr(), v.as_mut_ptr(), v.len());
        merged.set_len(0);
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..10_000u64).collect();
        let doubled: Vec<u64> = v.par_iter().with_min_len(64).map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..10_000u64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn ranges_and_sum() {
        let s: u64 = (0..1000u64).into_par_iter().sum();
        assert_eq!(s, 999 * 1000 / 2);
        let s: u64 = (1..=1000u64).into_par_iter().sum();
        assert_eq!(s, 1000 * 1001 / 2);
    }

    #[test]
    fn zip_enumerate_rev() {
        let a: Vec<usize> = (0..500).collect();
        let b: Vec<usize> = (0..500).map(|x| x * 10).collect();
        let pairs: Vec<(usize, (usize, usize))> = a
            .par_iter()
            .zip(b.par_iter())
            .enumerate()
            .with_min_len(16)
            .map(|(i, (&x, &y))| (i, (x, y)))
            .collect();
        assert_eq!(pairs.len(), 500);
        for (i, (x, y)) in pairs {
            assert_eq!(x, i);
            assert_eq!(y, i * 10);
        }
        let r: Vec<usize> = a.par_iter().rev().copied().collect();
        let mut expect = a.clone();
        expect.reverse();
        assert_eq!(r, expect);
    }

    #[test]
    fn chunks_line_up() {
        let v: Vec<usize> = (0..1000).collect();
        let mut out = vec![0usize; 1000];
        out.par_chunks_mut(64)
            .zip(v.par_chunks(64))
            .for_each(|(o, i)| {
                o.copy_from_slice(i);
            });
        assert_eq!(out, v);
    }

    // One test covers the env latch *and* the override because they
    // share process-global state; sequencing the assertions inside one
    // test avoids ordering races with sibling tests.
    #[test]
    fn threads_env_is_latched_but_override_is_live() {
        // Force the once-read default, whatever it is on this host.
        let latched = current_num_threads();
        // The documented footgun: writing the env var after the first
        // parallel touch has no effect — the value is latched.
        std::env::set_var("PHC_THREADS", "17");
        assert_eq!(
            current_num_threads(),
            latched,
            "env writes after first touch must be stale"
        );
        std::env::remove_var("PHC_THREADS");
        // The in-process override takes effect immediately...
        set_threads_for_test(Some(3));
        assert_eq!(current_num_threads(), 3);
        // ...but an explicitly installed width still wins.
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 2);
        set_threads_for_test(None);
        assert_eq!(current_num_threads(), latched);
    }

    #[test]
    fn install_sets_width() {
        for t in [1, 2, 4] {
            let pool = ThreadPoolBuilder::new().num_threads(t).build().unwrap();
            assert_eq!(pool.install(current_num_threads), t);
        }
    }

    #[test]
    fn install_runs_on_pool_worker() {
        let caller = std::thread::current().id();
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let inside = pool.install(std::thread::current);
        assert_ne!(
            inside.id(),
            caller,
            "install must ship the closure to a pool worker"
        );
        assert!(
            inside.name().unwrap_or("").starts_with("phc-pool-"),
            "install ran on {:?}, not a pool worker",
            inside.name()
        );
    }

    #[test]
    fn nested_install_restores_width() {
        let outer = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let inner = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let (before, during, after) = outer.install(|| {
            let before = current_num_threads();
            let during = inner.install(current_num_threads);
            (before, during, current_num_threads())
        });
        assert_eq!(before, 4);
        assert_eq!(during, 2);
        assert_eq!(after, 4, "nested install must restore the outer width");
        // The installing thread's own width is untouched too.
        let base = current_num_threads();
        outer.install(|| ());
        assert_eq!(current_num_threads(), base);
    }

    #[test]
    fn chunk_panic_propagates() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| {
                (0..1000usize)
                    .into_par_iter()
                    .with_min_len(1)
                    .for_each(|i| {
                        if i == 517 {
                            panic!("boom in chunk");
                        }
                    });
            })
        }));
        assert!(caught.is_err(), "panic inside a chunk must propagate");
        // The pool survives and runs the next job normally.
        let s: usize = pool.install(|| (0..100usize).into_par_iter().sum());
        assert_eq!(s, 4950);
    }

    #[test]
    fn join_runs_both_and_propagates() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!((a, b), (2, "two"));
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            join(|| (), || panic!("right arm"))
        }));
        assert!(caught.is_err());
    }

    #[test]
    fn par_sort_matches_std() {
        let mut a: Vec<u64> = (0..100_000u64)
            .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15))
            .collect();
        let mut b = a.clone();
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| a.par_sort_unstable());
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn filter_min_max_count() {
        let v: Vec<i64> = (-500..500).collect();
        let evens = v.par_iter().with_min_len(10).filter(|x| **x % 2 == 0);
        assert_eq!(evens.count(), 500);
        assert_eq!(v.par_iter().copied().min(), Some(-500));
        assert_eq!(v.par_iter().copied().max(), Some(499));
        assert!(v.par_iter().any(|&x| x == 250));
        assert!(v.par_iter().all(|&x| x < 500));
    }
}
