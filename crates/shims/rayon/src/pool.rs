//! The persistent work-stealing worker pool behind every parallel
//! call in the shim.
//!
//! ## Architecture
//!
//! Workers are OS threads spawned **once** (lazily, on the first
//! parallel call) and parked on a condvar when idle. A parallel call
//! does not spawn anything: it publishes a [`Job`] — a descriptor
//! living on the submitting thread's stack — in a global registry,
//! wakes some workers, and then participates in its own job.
//!
//! ## Steal-by-cursor chunk scheduling
//!
//! A job is split into `n_chunks` indexed chunks. Every participant
//! (the submitter plus up to `width - 1` workers) claims chunks with a
//! `fetch_add` on the job's shared atomic cursor until it is
//! exhausted. This is a deliberately simple form of stealing — there
//! are no per-worker deques to search; "stealing" is claiming the next
//! chunk index from the shared cursor — but it has the two properties
//! the workspace needs: load balance (a slow chunk never blocks the
//! remaining chunks behind one thread's fixed share) and **fairness of
//! outcome**: every chunk writes its results by chunk *index*, so the
//! output is byte-identical no matter which worker ran which chunk.
//! Determinism survives stealing because scheduling decides only
//! *where* a chunk runs, never *what* it computes or where it writes.
//!
//! ## Lifetime safety
//!
//! `Job` borrows stack data of the submitter (the chunk closure and
//! its result slots), so the submitter must not return while any
//! worker can still touch the job. The protocol:
//!
//! 1. a worker may only discover a job through the registry, and
//!    checks in (`checked_in += 1`) *under the registry lock*, which
//!    the submitter also needs for deregistration — so check-in only
//!    happens while the job is provably alive;
//! 2. the submitter waits for `remaining == 0` (all chunks executed),
//!    deregisters the job, then spins until `checked_in == 0`; a
//!    checked-in worker's final access to the job is the `Release`
//!    decrement of `checked_in`, so once the submitter observes zero
//!    with `Acquire`, no worker holds a reference.
//!
//! Chunk panics are caught (keeping the worker alive), recorded in the
//! job, and resumed on the submitting thread after the job completes —
//! the same observable behavior as the old `scope`-spawn executor's
//! propagating `join()`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock};
use std::thread::Thread;

use crate::POOL_THREADS;

/// How many chunks each participating thread gets on average: a job is
/// cut into `width * OVERPARTITION` chunks (bounded by `min_len`) so a
/// participant that finishes early can steal the tail of the work
/// instead of idling behind the slowest fixed share.
pub(crate) const OVERPARTITION: usize = 4;

/// A type-erased parallel job. Lives on the submitting thread's stack
/// for the duration of [`run_job`] / [`run_oneshot`].
struct Job {
    /// Next chunk index to claim.
    cursor: AtomicUsize,
    /// Total chunk count.
    n_chunks: usize,
    /// Chunks not yet finished executing.
    remaining: AtomicUsize,
    /// Workers currently inside the claim loop (submitter excluded).
    checked_in: AtomicUsize,
    /// Current participants (submitter included when it participates).
    participants: AtomicUsize,
    /// Maximum concurrent participants.
    width: usize,
    /// One-shot jobs (installed closures) must run on a worker, never
    /// the submitter; workers prefer them so they cannot starve behind
    /// a wide long-running job.
    oneshot: bool,
    /// The submitting thread, unparked on progress.
    waiter: Thread,
    /// The chunk body: `func(i)` runs chunk `i`. Lifetime-erased; valid
    /// until the submitting frame returns.
    func: *const (dyn Fn(usize) + Sync),
    /// First panic payload observed in any chunk.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// Registry entry; raw pointer into a submitter's stack frame.
#[derive(Clone, Copy, PartialEq, Eq)]
struct JobRef(*const Job);
// SAFETY: the check-in/deregister protocol above guarantees the
// pointee outlives every dereference.
unsafe impl Send for JobRef {}

/// Global pool state: the job registry plus worker bookkeeping.
struct PoolState {
    /// Jobs that may still have unclaimed chunks, submission order.
    queue: Mutex<Vec<JobRef>>,
    /// Wakes parked workers when the queue changes.
    work_available: Condvar,
    /// Workers spawned so far.
    spawned: AtomicUsize,
    /// Workers currently parked in `work_available.wait`.
    idle: AtomicUsize,
    /// One-shot jobs submitted but not yet claimed.
    oneshot_pending: AtomicUsize,
    /// Serializes worker spawning.
    spawn_lock: Mutex<()>,
}

thread_local! {
    /// Whether the current thread is a pool worker.
    static IS_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Whether the calling thread is one of the pool's workers.
pub(crate) fn on_worker() -> bool {
    IS_WORKER.with(|c| c.get())
}

/// In-process override for [`configured_pool_size`] (0 = none).
static WIDTH_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the default parallel width for the current process
/// (`None` restores the `PHC_THREADS`/auto-detected value). The env
/// knob is read once and latched — setting `PHC_THREADS` after the
/// first parallel call silently does nothing — so this is the
/// supported way to change the default width after startup. An
/// explicitly installed width (`ThreadPool::install`,
/// `with_pool`) still takes precedence; the pool grows workers on
/// demand if the override raises the width.
pub fn set_threads_for_test(width: Option<usize>) {
    WIDTH_OVERRIDE.store(width.unwrap_or(0), Ordering::SeqCst);
}

/// The configured pool size: the in-process override
/// ([`set_threads_for_test`]) if one is set, else `PHC_THREADS` (read
/// once at pool init), else the machine's available parallelism. This
/// is both the number of initially spawned workers and the default
/// width of parallel calls.
pub(crate) fn configured_pool_size() -> usize {
    let o = WIDTH_OVERRIDE.load(Ordering::Relaxed);
    if o > 0 {
        return o;
    }
    static SIZE: OnceLock<usize> = OnceLock::new();
    *SIZE.get_or_init(|| {
        std::env::var("PHC_THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n: &usize| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

fn pool() -> &'static PoolState {
    static POOL: OnceLock<PoolState> = OnceLock::new();
    POOL.get_or_init(|| PoolState {
        queue: Mutex::new(Vec::new()),
        work_available: Condvar::new(),
        spawned: AtomicUsize::new(0),
        idle: AtomicUsize::new(0),
        oneshot_pending: AtomicUsize::new(0),
        spawn_lock: Mutex::new(()),
    })
}

fn lock_queue(pool: &'static PoolState) -> MutexGuard<'static, Vec<JobRef>> {
    // Workers never panic while holding the lock, but a poisoned queue
    // would wedge the whole process; recover defensively.
    pool.queue.lock().unwrap_or_else(|e| e.into_inner())
}

/// Ensures at least `n` workers exist (spawned once, kept forever).
fn ensure_workers(n: usize) {
    let pool = pool();
    if pool.spawned.load(Ordering::Relaxed) >= n {
        return;
    }
    let _g = pool.spawn_lock.lock().unwrap_or_else(|e| e.into_inner());
    while pool.spawned.load(Ordering::Relaxed) < n {
        let id = pool.spawned.load(Ordering::Relaxed);
        std::thread::Builder::new()
            .name(format!("phc-pool-{id}"))
            .spawn(move || worker_loop(pool))
            .expect("failed to spawn pool worker");
        pool.spawned.fetch_add(1, Ordering::Relaxed);
    }
}

/// The body of every persistent worker: park until work appears, join
/// a claimable job, drain chunks from its cursor, repeat.
fn worker_loop(pool: &'static PoolState) {
    IS_WORKER.with(|c| c.set(true));
    let mut queue = lock_queue(pool);
    loop {
        // Prefer one-shot (installed) jobs so they cannot starve
        // behind a wide data-parallel job, then submission order.
        let mut joined: Option<JobRef> = None;
        for pass in 0..2 {
            for &jr in queue.iter() {
                let job = unsafe { &*jr.0 };
                if pass == 0 && !job.oneshot {
                    continue;
                }
                if job.cursor.load(Ordering::Relaxed) >= job.n_chunks {
                    continue;
                }
                // Take a participant slot if the job is below width.
                let mut p = job.participants.load(Ordering::Relaxed);
                let took = loop {
                    if p >= job.width {
                        break false;
                    }
                    match job.participants.compare_exchange_weak(
                        p,
                        p + 1,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => break true,
                        Err(cur) => p = cur,
                    }
                };
                if took {
                    // Check-in happens under the queue lock: the job
                    // is registered, hence alive.
                    job.checked_in.fetch_add(1, Ordering::Relaxed);
                    if job.oneshot {
                        pool.oneshot_pending.fetch_sub(1, Ordering::Relaxed);
                    }
                    joined = Some(jr);
                    break;
                }
            }
            if joined.is_some() {
                break;
            }
        }
        match joined {
            None => {
                pool.idle.fetch_add(1, Ordering::Relaxed);
                queue = pool
                    .work_available
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
                pool.idle.fetch_sub(1, Ordering::Relaxed);
            }
            Some(jr) => {
                drop(queue);
                let job = unsafe { &*jr.0 };
                let claimed = execute_chunks(job);
                phc_obs::probe!(count SchedSteals, claimed);
                // Checkout: clone the waiter first — after the final
                // `checked_in` decrement the job may be freed.
                let waiter = job.waiter.clone();
                job.participants.fetch_sub(1, Ordering::Relaxed);
                job.checked_in.fetch_sub(1, Ordering::Release);
                waiter.unpark();
                queue = lock_queue(pool);
            }
        }
    }
}

/// Claims and runs chunks until the cursor is exhausted; returns the
/// number of chunks this thread executed. Inside a chunk the calling
/// thread reports the job's width as `current_num_threads`.
fn execute_chunks(job: &Job) -> usize {
    // SAFETY: the job is alive (submitter ownership or check-in).
    let func = unsafe { &*job.func };
    let prev_width = POOL_THREADS.with(|c| c.replace(Some(job.width)));
    let mut claimed = 0usize;
    loop {
        let i = job.cursor.fetch_add(1, Ordering::Relaxed);
        if i >= job.n_chunks {
            phc_obs::probe!(count SchedStealAttempts);
            break;
        }
        claimed += 1;
        if let Err(p) = catch_unwind(AssertUnwindSafe(|| func(i))) {
            let mut slot = job.panic.lock().unwrap_or_else(|e| e.into_inner());
            if slot.is_none() {
                *slot = Some(p);
            }
        }
        job.remaining.fetch_sub(1, Ordering::Release);
    }
    POOL_THREADS.with(|c| c.set(prev_width));
    phc_obs::probe!(count SchedChunksClaimed, claimed);
    phc_obs::probe!(hist SchedChunksPerWorker, claimed);
    claimed
}

/// Registers `job`, wakes up to `helpers` workers, and returns.
fn submit(job: &Job, helpers: usize) {
    let pool = pool();
    {
        let mut queue = lock_queue(pool);
        if job.oneshot {
            pool.oneshot_pending.fetch_add(1, Ordering::Relaxed);
            // Front of the queue: first pick for a waking worker.
            queue.insert(0, JobRef(job));
        } else {
            queue.push(JobRef(job));
        }
    }
    for _ in 0..helpers {
        pool.work_available.notify_one();
    }
    phc_obs::probe!(count SchedJobs);
}

/// Deregisters `job` and waits out any straggling claim-loop workers,
/// then propagates the first chunk panic, if any.
fn retire(job: &Job) {
    let pool = pool();
    {
        let mut queue = lock_queue(pool);
        queue.retain(|jr| !std::ptr::eq(jr.0, job));
    }
    while job.checked_in.load(Ordering::Acquire) != 0 {
        std::hint::spin_loop();
    }
    let payload = job.panic.lock().unwrap_or_else(|e| e.into_inner()).take();
    if let Some(p) = payload {
        std::panic::resume_unwind(p);
    }
}

/// Runs `func(i)` for every `i in 0..n_chunks` on the pool. The
/// calling thread participates; up to `width - 1` workers help by
/// claiming chunks from the shared cursor. Blocks until every chunk
/// has executed. Panics in chunks are propagated to the caller.
pub(crate) fn run_job(n_chunks: usize, width: usize, func: &(dyn Fn(usize) + Sync)) {
    if n_chunks == 0 {
        return;
    }
    if n_chunks == 1 || width <= 1 {
        let prev = POOL_THREADS.with(|c| c.replace(Some(width.max(1))));
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_THREADS.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(prev);
        for i in 0..n_chunks {
            func(i);
        }
        return;
    }
    ensure_workers(width);
    let job = Job {
        cursor: AtomicUsize::new(0),
        n_chunks,
        remaining: AtomicUsize::new(n_chunks),
        checked_in: AtomicUsize::new(0),
        participants: AtomicUsize::new(1), // the submitter
        width,
        oneshot: false,
        waiter: std::thread::current(),
        func: erase(func),
        panic: Mutex::new(None),
    };
    submit(&job, (width - 1).min(n_chunks - 1));
    execute_chunks(&job);
    while job.remaining.load(Ordering::Acquire) != 0 {
        std::thread::park();
    }
    retire(&job);
}

/// Runs `func(0)` as a one-chunk job on a pool **worker** (the caller
/// parks and never executes the chunk itself). Used by
/// `ThreadPool::install` to move installed closures onto the pool.
pub(crate) fn run_oneshot(width: usize, func: &(dyn Fn(usize) + Sync)) {
    let pool = pool();
    ensure_workers(configured_pool_size().max(1));
    // A oneshot needs a free worker *now*: if none is idle, grow the
    // pool by one (bounded by the number of concurrently outstanding
    // installs, mirroring the old spawn-per-call behavior).
    if pool.idle.load(Ordering::Relaxed) <= pool.oneshot_pending.load(Ordering::Relaxed) {
        ensure_workers(pool.spawned.load(Ordering::Relaxed) + 1);
    }
    let job = Job {
        cursor: AtomicUsize::new(0),
        n_chunks: 1,
        remaining: AtomicUsize::new(1),
        checked_in: AtomicUsize::new(0),
        participants: AtomicUsize::new(0), // submitter does not join
        width: width.max(1),
        oneshot: true,
        waiter: std::thread::current(),
        func: erase(func),
        panic: Mutex::new(None),
    };
    submit(&job, 1);
    while job.remaining.load(Ordering::Acquire) != 0 {
        std::thread::park();
    }
    retire(&job);
}

/// Erases the borrow lifetime of a chunk closure. Sound because every
/// submission path blocks until no worker can touch the job again.
fn erase<'a>(func: &'a (dyn Fn(usize) + Sync + 'a)) -> *const (dyn Fn(usize) + Sync) {
    let ptr: *const (dyn Fn(usize) + Sync + 'a) = func;
    unsafe { std::mem::transmute(ptr) }
}

/// A cell asserting cross-thread shareability; each index is touched
/// by exactly one chunk, which the cursor's `fetch_add` guarantees.
pub(crate) struct SyncCell<T>(std::cell::UnsafeCell<T>);
// SAFETY: disjoint per-chunk access (see above).
unsafe impl<T: Send> Sync for SyncCell<T> {}

impl<T> SyncCell<T> {
    pub(crate) fn new(v: T) -> Self {
        SyncCell(std::cell::UnsafeCell::new(v))
    }
    /// Raw pointer to the contents. Going through a method (rather
    /// than the field) makes closures capture `&SyncCell`, keeping the
    /// `Sync` assertion in force under RFC 2229 disjoint captures.
    pub(crate) fn get(&self) -> *mut T {
        self.0.get()
    }
    pub(crate) fn into_inner(self) -> T {
        self.0.into_inner()
    }
}
