//! Graph inputs (paper §6: `3D-grid`, `random`, `rMat`).
//!
//! All generators return undirected edge lists with vertex ids in
//! `[0, n)`; the graph applications build CSR adjacency from them.

use phc_parutil::IndexRng;
use rayon::prelude::*;

/// An undirected edge list plus its vertex count.
#[derive(Clone, Debug)]
pub struct EdgeList {
    /// Number of vertices.
    pub n: usize,
    /// Edges as (u, v) pairs; may contain duplicates and both
    /// orientations depending on the generator.
    pub edges: Vec<(u32, u32)>,
}

/// `3D-grid`: vertices on a `side³` grid, each connected to its two
/// neighbors in each dimension (torus wraparound, matching PBBS's
/// constant-degree construction: every vertex has six edges).
pub fn grid3d(side: usize) -> EdgeList {
    let n = side * side * side;
    assert!(n > 0);
    let idx = |x: usize, y: usize, z: usize| -> u32 { ((x * side + y) * side + z) as u32 };
    let edges: Vec<(u32, u32)> = (0..n)
        .into_par_iter()
        .with_min_len(1024)
        .flat_map_iter(|v| {
            let z = v % side;
            let y = (v / side) % side;
            let x = v / (side * side);
            // Emit the +1 neighbor in each dimension: every edge once.
            [
                (idx(x, y, z), idx((x + 1) % side, y, z)),
                (idx(x, y, z), idx(x, (y + 1) % side, z)),
                (idx(x, y, z), idx(x, y, (z + 1) % side)),
            ]
        })
        .filter(|&(u, v)| u != v)
        .collect();
    EdgeList { n, edges }
}

/// `random`: each vertex draws `degree` neighbors uniformly at random.
pub fn random_graph(n: usize, degree: usize, seed: u64) -> EdgeList {
    let rng = IndexRng::new(seed);
    let edges: Vec<(u32, u32)> = (0..n)
        .into_par_iter()
        .with_min_len(1024)
        .flat_map_iter(|v| {
            // Rebind to move a copy of the rng into the inner closure.
            #[allow(clippy::redundant_locals)]
            let rng = rng;
            (0..degree as u64).filter_map(move |d| {
                let u = rng.gen_range(v as u64 * degree as u64 + d, n as u64) as u32;
                (u as usize != v).then_some((v as u32, u))
            })
        })
        .collect();
    EdgeList { n, edges }
}

/// `rMat`: the recursive-matrix power-law generator of Chakrabarti,
/// Zhan & Faloutsos with the standard PBBS parameters
/// `(a, b, c) = (0.5, 0.1, 0.1)`.
pub fn rmat(log2_n: u32, m: usize, seed: u64) -> EdgeList {
    let n = 1usize << log2_n;
    let rng = IndexRng::new(seed);
    let (a, b, c) = (0.5f64, 0.1f64, 0.1f64);
    let edges: Vec<(u32, u32)> = (0..m)
        .into_par_iter()
        .with_min_len(1024)
        .filter_map(|e| {
            let s = rng.stream(e as u64);
            let (mut u, mut v) = (0usize, 0usize);
            for lvl in 0..log2_n as u64 {
                let r = s.gen_f64(lvl);
                let (du, dv) = if r < a {
                    (0, 0)
                } else if r < a + b {
                    (0, 1)
                } else if r < a + b + c {
                    (1, 0)
                } else {
                    (1, 1)
                };
                u = (u << 1) | du;
                v = (v << 1) | dv;
            }
            (u != v).then_some((u as u32, v as u32))
        })
        .collect();
    EdgeList { n, edges }
}

impl EdgeList {
    /// Total number of (directed) edge records.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_has_three_edges_per_vertex() {
        let g = grid3d(10);
        assert_eq!(g.n, 1000);
        assert_eq!(g.edges.len(), 3000);
        assert!(g
            .edges
            .iter()
            .all(|&(u, v)| (u as usize) < g.n && (v as usize) < g.n));
    }

    #[test]
    fn grid_side_one_has_no_self_loops() {
        let g = grid3d(1);
        assert_eq!(g.n, 1);
        assert!(g.edges.is_empty());
    }

    #[test]
    fn random_graph_shape() {
        let g = random_graph(1000, 5, 1);
        assert_eq!(g.n, 1000);
        assert!(g.edges.len() <= 5000 && g.edges.len() > 4900);
        assert!(g
            .edges
            .iter()
            .all(|&(u, v)| (u as usize) < 1000 && (v as usize) < 1000 && u != v));
        assert_eq!(random_graph(1000, 5, 1).edges, g.edges);
    }

    #[test]
    fn rmat_is_power_law_ish() {
        let g = rmat(12, 20_000, 3);
        assert_eq!(g.n, 4096);
        assert!(g
            .edges
            .iter()
            .all(|&(u, v)| (u as usize) < g.n && (v as usize) < g.n));
        // Degree skew: the max out-degree should dwarf the mean.
        let mut deg = vec![0usize; g.n];
        for &(u, _) in &g.edges {
            deg[u as usize] += 1;
        }
        let max = *deg.iter().max().unwrap();
        let mean = g.edges.len() / g.n;
        assert!(max > mean * 10, "max {max}, mean {mean}");
    }

    #[test]
    fn rmat_reproducible() {
        assert_eq!(rmat(10, 5000, 7).edges, rmat(10, 5000, 7).edges);
    }
}
