//! English-like string keys from a letter trigram model (the paper's
//! `trigramSeq` input).
//!
//! PBBS generates words from trigram probabilities measured on English
//! text. We embed a compact second-order Markov model instead of the
//! original multi-megabyte table: transition weights are synthesized
//! from English letter frequencies plus a list of the most common
//! English trigrams, which reproduces the properties the benchmark
//! needs — realistic letter distributions, word-length distribution,
//! and (crucially) a heavy-tailed duplicate-key distribution, because
//! short probable words recur constantly.

use phc_parutil::IndexRng;
use rayon::prelude::*;

const ALPHA: usize = 26;

/// English letter frequencies (per mille), the first-order backbone.
const LETTER_FREQ: [u32; ALPHA] = [
    82, 15, 28, 43, 127, 22, 20, 61, 70, 2, 8, 40, 24, 67, 75, 19, 1, 60, 63, 91, 28, 10, 24, 2,
    20, 1,
];

/// Common English trigrams, used to sharpen the second-order structure.
const COMMON_TRIGRAMS: &[&str] = &[
    "the", "and", "ing", "ent", "ion", "her", "for", "tha", "nth", "int", "ere", "tio", "ter",
    "est", "ers", "ati", "hat", "ate", "all", "eth", "hes", "ver", "his", "oft", "ith", "fth",
    "sth", "oth", "res", "ont", "are", "ear", "was", "sin", "sto", "tis", "ted", "ers", "con",
    "com", "per", "ble", "der", "ous", "pro", "sta", "men", "our", "ess", "ave",
];

/// The trigram model: for every letter pair, a cumulative distribution
/// over the next letter.
pub struct TrigramModel {
    /// `cdf[a * 26 + b]` is the cumulative weight table for next-letter
    /// selection after the pair `(a, b)`.
    cdf: Vec<[u32; ALPHA]>,
}

impl Default for TrigramModel {
    fn default() -> Self {
        Self::new()
    }
}

impl TrigramModel {
    /// Builds the embedded model (deterministic; no I/O).
    pub fn new() -> Self {
        let mut weights = vec![[1u32; ALPHA]; ALPHA * ALPHA];
        // First-order backbone: after any pair, next-letter weight
        // follows English letter frequency.
        for w in weights.iter_mut() {
            for (c, wt) in w.iter_mut().enumerate() {
                *wt += LETTER_FREQ[c];
            }
        }
        // Sharpen with common trigrams.
        for tri in COMMON_TRIGRAMS {
            let b = tri.as_bytes();
            let (a, bb, c) = (b[0] - b'a', b[1] - b'a', b[2] - b'a');
            weights[a as usize * ALPHA + bb as usize][c as usize] += 2000;
        }
        // Convert to CDFs.
        let cdf = weights
            .into_iter()
            .map(|w| {
                let mut acc = 0u32;
                let mut out = [0u32; ALPHA];
                for (o, wt) in out.iter_mut().zip(w) {
                    acc += wt;
                    *o = acc;
                }
                out
            })
            .collect();
        TrigramModel { cdf }
    }

    fn next_letter(&self, a: u8, b: u8, draw: u64) -> u8 {
        let table = &self.cdf[a as usize * ALPHA + b as usize];
        let total = table[ALPHA - 1] as u64;
        let x = (draw % total) as u32;
        let pos = table.partition_point(|&c| c <= x);
        pos.min(ALPHA - 1) as u8
    }

    /// Generates the `i`-th word of the stream `(seed)`: length is
    /// geometric-ish (mean ≈ 5), letters follow the trigram chain.
    pub fn word(&self, rng: &IndexRng, i: u64) -> String {
        let w = rng.stream(i);
        // Word length: 1 + geometric with p = 1/5, capped at 16.
        let mut len = 1usize;
        let mut d = w.gen(0);
        while len < 16 && !d.is_multiple_of(5) {
            len += 1;
            d = phc_parutil::hash64(d);
        }
        let mut out = Vec::with_capacity(len);
        let (mut a, mut b) = (b't' - b'a', b'h' - b'a');
        for j in 0..len {
            let c = self.next_letter(a, b, w.gen(1 + j as u64));
            out.push(b'a' + c);
            a = b;
            b = c;
        }
        // SAFETY-free: all bytes are ASCII lowercase letters.
        String::from_utf8(out).unwrap()
    }
}

/// `trigramSeq`: `n` English-like words (many duplicates).
pub fn words(n: usize, seed: u64) -> Vec<String> {
    let model = TrigramModel::new();
    let rng = IndexRng::new(seed);
    (0..n)
        .into_par_iter()
        .with_min_len(1024)
        .map(|i| model.word(&rng, i as u64))
        .collect()
}

/// `trigramSeq-pairInt`: words with a uniform integer value each.
pub fn words_with_values(n: usize, seed: u64) -> Vec<(String, u64)> {
    let model = TrigramModel::new();
    let rng = IndexRng::new(seed);
    let vals = rng.stream(999);
    (0..n)
        .into_par_iter()
        .with_min_len(1024)
        .map(|i| (model.word(&rng, i as u64), vals.gen(i as u64)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn words_are_lowercase_ascii() {
        for w in words(2000, 1) {
            assert!(!w.is_empty() && w.len() <= 16);
            assert!(w.bytes().all(|b| b.is_ascii_lowercase()), "{w}");
        }
    }

    #[test]
    fn reproducible() {
        assert_eq!(words(1000, 42), words(1000, 42));
        assert_ne!(words(1000, 42), words(1000, 43));
    }

    #[test]
    fn has_heavy_duplicates() {
        let ws = words(50_000, 7);
        let distinct = ws.iter().collect::<HashSet<_>>().len();
        // The paper's trigramSeq has many duplicate keys; the model
        // must reproduce that (well under half distinct).
        assert!(distinct < 40_000, "distinct = {distinct}");
        assert!(distinct > 1_000, "distinct = {distinct} (too degenerate)");
    }

    #[test]
    fn letter_distribution_is_english_like() {
        let ws = words(20_000, 3);
        let mut counts = [0usize; 26];
        let mut total = 0usize;
        for w in &ws {
            for b in w.bytes() {
                counts[(b - b'a') as usize] += 1;
                total += 1;
            }
        }
        // 'e' and 't' should be far more common than 'q' and 'z'.
        let e = counts[4] as f64 / total as f64;
        let q = counts[16] as f64 / total as f64;
        assert!(e > 0.05, "e freq {e}");
        assert!(q < 0.01, "q freq {q}");
    }

    #[test]
    fn pair_values_attached() {
        let ps = words_with_values(500, 11);
        assert_eq!(ps.len(), 500);
        let plain = words(500, 11);
        for (i, (w, _)) in ps.iter().enumerate() {
            assert_eq!(w, &plain[i]);
        }
    }
}
