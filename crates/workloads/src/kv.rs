//! Closed-loop KV request-log generation for the sharded server
//! (`crates/server`).
//!
//! Simulates `clients` logical closed-loop clients: each client issues
//! its next request only after the previous one completed, and the
//! server admits one request per client per scheduling round
//! (round-robin). That makes the interleaving — and therefore the
//! whole request log — a pure function of the generator parameters:
//! operation `j` belongs to client `j % clients` and is that client's
//! request number `j / clients`. All randomness is drawn by hashing
//! the `(client, request#)` pair, so a given client's request stream
//! is identical no matter how many other clients exist or how many
//! threads generate the log. Millions of logical clients cost nothing:
//! client state is implicit in the index arithmetic.

use crate::zipf::Zipf;
use phc_parutil::IndexRng;
use rayon::prelude::*;

/// One KV request. Keys are nonzero `u32`s (the server stores them in
/// the key half of a `KvPair`); values are nonzero `u32`s.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum KvOp {
    /// Store `val` under `key` (combining on duplicates — see the
    /// server's semantics).
    Put {
        /// Nonzero key.
        key: u32,
        /// Nonzero value.
        val: u32,
    },
    /// Look up `key`.
    Get {
        /// Nonzero key.
        key: u32,
    },
    /// Remove `key`.
    Del {
        /// Nonzero key.
        key: u32,
    },
}

impl KvOp {
    /// The key this operation touches.
    pub fn key(&self) -> u32 {
        match *self {
            KvOp::Put { key, .. } | KvOp::Get { key } | KvOp::Del { key } => key,
        }
    }
}

/// Workload shape for [`kv_request_log`]: operation mix and key skew.
#[derive(Clone, Copy, Debug)]
pub struct KvWorkload {
    /// Number of logical closed-loop clients (≥ 1).
    pub clients: usize,
    /// Distinct keys; draws are Zipf-skewed over `1..=key_space`.
    pub key_space: usize,
    /// Zipf exponent (0 = uniform; 0.99 = YCSB-like skew).
    pub zipf_s: f64,
    /// Fraction of operations that are gets, in `[0, 1]`.
    pub get_frac: f64,
    /// Fraction of operations that are deletes, in `[0, 1]`
    /// (`get_frac + del_frac ≤ 1`; the rest are puts).
    pub del_frac: f64,
}

impl Default for KvWorkload {
    /// YCSB-B-ish: 95% gets, 5% puts, no deletes, Zipf 0.99.
    fn default() -> Self {
        KvWorkload {
            clients: 1 << 20,
            key_space: 1 << 16,
            zipf_s: 0.99,
            get_frac: 0.95,
            del_frac: 0.0,
        }
    }
}

/// Generates the deterministic request log of `n_ops` operations for
/// `w` (see the [module docs](self) for the closed-loop model).
pub fn kv_request_log(n_ops: usize, w: &KvWorkload, seed: u64) -> Vec<KvOp> {
    assert!(w.clients >= 1, "need at least one client");
    assert!(
        w.get_frac + w.del_frac <= 1.0 + 1e-9,
        "op-mix fractions exceed 1"
    );
    let zipf = Zipf::new(w.key_space, w.zipf_s);
    let kind_rng = IndexRng::new(seed);
    let key_rng = kind_rng.stream(1);
    let val_rng = kind_rng.stream(2);
    // Per-mille thresholds keep the mix integral and exact.
    let get_lim = (w.get_frac * 1000.0) as u64;
    let del_lim = get_lim + (w.del_frac * 1000.0) as u64;
    let clients = w.clients as u64;
    (0..n_ops)
        .into_par_iter()
        .with_min_len(4096)
        .map(|j| {
            let j = j as u64;
            // Round-robin closed loop: client c's q-th request.
            let (c, q) = (j % clients, j / clients);
            // Hash the (client, request#) pair into one draw index so
            // a client's stream is independent of the client count's
            // interleaving.
            let idx = phc_parutil::hash64_pair(c, q);
            let key = zipf.key(key_rng.gen(idx)) as u32;
            match kind_rng.gen_range(idx, 1000) {
                r if r < get_lim => KvOp::Get { key },
                r if r < del_lim => KvOp::Del { key },
                _ => KvOp::Put {
                    key,
                    val: (val_rng.gen_range(idx, u32::MAX as u64 - 1) + 1) as u32,
                },
            }
        })
        .collect()
}

/// Generates a deterministic **read-modify-write** request log: the
/// stream is a sequence of per-key triplets — op `j` belongs to group
/// `g = j / 3`, and a group's three consecutive ops hit the *same*
/// Zipf-drawn key in the order put → get → (del or get). The final
/// slot is a delete with probability `w.del_frac`, otherwise a get
/// (so `del_frac = 1.0` gives the balanced 1:1:1 put/get/del mix).
///
/// This is the mixed-op shape the phase discipline forbids outright —
/// every adjacent op pair changes type, so a room-synchronized table
/// pays a room switch at essentially every op on the per-op path —
/// and the regime Maier et al. ("Concurrent Hash Tables: Fast and
/// General?(!)") evaluate concurrent tables under. `w.get_frac` and
/// `w.clients` are ignored: the mix is structural and the triplet
/// order *is* the client's read-modify-write program order.
///
/// Like [`kv_request_log`], element `j` is a pure function of
/// `(seed, j)`, so generation parallelizes and reproduces exactly.
pub fn kv_rmw_log(n_ops: usize, w: &KvWorkload, seed: u64) -> Vec<KvOp> {
    let zipf = Zipf::new(w.key_space, w.zipf_s);
    let rng = IndexRng::new(seed ^ 0x9e37_79b9_7f4a_7c15);
    let key_rng = rng.stream(1);
    let val_rng = rng.stream(2);
    let del_rng = rng.stream(3);
    let del_lim = (w.del_frac * 1000.0) as u64;
    (0..n_ops)
        .into_par_iter()
        .with_min_len(4096)
        .map(|j| {
            let j = j as u64;
            let g = j / 3;
            let key = zipf.key(key_rng.gen(g)) as u32;
            match j % 3 {
                0 => KvOp::Put {
                    key,
                    val: (val_rng.gen_range(j, u32::MAX as u64 - 1) + 1) as u32,
                },
                1 => KvOp::Get { key },
                _ if del_rng.gen_range(g, 1000) < del_lim => KvOp::Del { key },
                _ => KvOp::Get { key },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix() -> KvWorkload {
        KvWorkload {
            clients: 8,
            key_space: 1000,
            zipf_s: 0.99,
            get_frac: 0.5,
            del_frac: 0.1,
        }
    }

    #[test]
    fn log_is_reproducible_and_in_range() {
        let a = kv_request_log(20_000, &mix(), 42);
        assert_eq!(a, kv_request_log(20_000, &mix(), 42));
        assert_ne!(a, kv_request_log(20_000, &mix(), 43));
        for op in &a {
            assert!((1..=1000).contains(&op.key()));
            if let KvOp::Put { val, .. } = op {
                assert!(*val >= 1);
            }
        }
    }

    #[test]
    fn op_mix_is_roughly_requested() {
        let a = kv_request_log(100_000, &mix(), 7);
        let gets = a.iter().filter(|o| matches!(o, KvOp::Get { .. })).count();
        let dels = a.iter().filter(|o| matches!(o, KvOp::Del { .. })).count();
        assert!((48_000..52_000).contains(&gets), "gets = {gets}");
        assert!((9_000..11_000).contains(&dels), "dels = {dels}");
    }

    #[test]
    fn client_streams_are_schedule_independent() {
        // Client 1's request stream must not depend on how many other
        // clients it is interleaved with: with 4 clients its requests
        // sit at indices 1, 5, 9, …; with 8 clients at 1, 9, 17, … —
        // same stream either way.
        let w4 = KvWorkload {
            clients: 4,
            ..mix()
        };
        let w8 = KvWorkload {
            clients: 8,
            ..mix()
        };
        let a = kv_request_log(4_000, &w4, 9);
        let b = kv_request_log(8_000, &w8, 9);
        let stream_a: Vec<KvOp> = a.iter().skip(1).step_by(4).copied().collect();
        let stream_b: Vec<KvOp> = b.iter().skip(1).step_by(8).copied().collect();
        assert_eq!(stream_a[..500], stream_b[..500]);
    }

    #[test]
    fn rmw_log_is_structured_in_triplets() {
        let w = KvWorkload {
            del_frac: 0.5,
            ..mix()
        };
        let a = kv_rmw_log(30_000, &w, 11);
        assert_eq!(a, kv_rmw_log(30_000, &w, 11), "reproducible");
        assert_ne!(a, kv_rmw_log(30_000, &w, 12));
        let mut dels = 0usize;
        for (g, t) in a.chunks(3).enumerate() {
            let key = t[0].key();
            assert!(
                t.iter().all(|op| op.key() == key),
                "group {g} must reuse one key"
            );
            assert!(matches!(t[0], KvOp::Put { .. }), "slot 0 is the put");
            assert!(matches!(t[1], KvOp::Get { .. }), "slot 1 is the get");
            match t[2] {
                KvOp::Del { .. } => dels += 1,
                KvOp::Get { .. } => {}
                KvOp::Put { .. } => panic!("slot 2 is never a put"),
            }
        }
        // 10_000 groups at del_frac = 0.5.
        assert!((4_500..5_500).contains(&dels), "dels = {dels}");
    }

    #[test]
    fn rmw_balanced_mix_at_full_del_frac() {
        let w = KvWorkload {
            del_frac: 1.0,
            ..mix()
        };
        let a = kv_rmw_log(9_000, &w, 5);
        let puts = a.iter().filter(|o| matches!(o, KvOp::Put { .. })).count();
        let gets = a.iter().filter(|o| matches!(o, KvOp::Get { .. })).count();
        let dels = a.iter().filter(|o| matches!(o, KvOp::Del { .. })).count();
        assert_eq!((puts, gets, dels), (3_000, 3_000, 3_000));
    }

    #[test]
    fn millions_of_clients_cost_nothing() {
        // Client state is implicit: a million-client log generates as
        // fast as an 8-client one and stays deterministic.
        let w = KvWorkload {
            clients: 1 << 20,
            ..mix()
        };
        let a = kv_request_log(10_000, &w, 3);
        assert_eq!(a, kv_request_log(10_000, &w, 3));
    }
}
