//! Integer sequence distributions (paper §6: `randomSeq-int`,
//! `randomSeq-pairInt`, `exptSeq-int`, `exptSeq-pairInt`).

use phc_parutil::IndexRng;
use rayon::prelude::*;

/// `randomSeq-int`: `n` keys uniform in `[1, n]`.
pub fn random_seq_int(n: usize, seed: u64) -> Vec<u64> {
    let rng = IndexRng::new(seed);
    (0..n)
        .into_par_iter()
        .with_min_len(4096)
        .map(|i| rng.gen_range(i as u64, n as u64) + 1)
        .collect()
}

/// `randomSeq-pairInt`: `n` key-value pairs, both uniform in `[1, n]`.
pub fn random_seq_pair_int(n: usize, seed: u64) -> Vec<(u32, u32)> {
    let keys = IndexRng::new(seed);
    let vals = keys.stream(1);
    let bound = (n as u64).min(u32::MAX as u64 - 1);
    (0..n)
        .into_par_iter()
        .with_min_len(4096)
        .map(|i| {
            (
                (keys.gen_range(i as u64, bound) + 1) as u32,
                (vals.gen_range(i as u64, bound) + 1) as u32,
            )
        })
        .collect()
}

/// `exptSeq-int`: `n` keys from an exponential distribution over
/// `[1, n]` — hot keys repeat heavily, exercising collision paths.
///
/// Matches the PBBS construction: the key space is divided into
/// log-many buckets whose probabilities halve, so key `1` region draws
/// half the samples, the next region a quarter, and so on.
pub fn expt_seq_int(n: usize, seed: u64) -> Vec<u64> {
    let rng = IndexRng::new(seed);
    let aux = rng.stream(7);
    (0..n)
        .into_par_iter()
        .with_min_len(4096)
        .map(|i| {
            let i = i as u64;
            // Geometric bucket index: count leading ones in a uniform
            // draw (probability 2^-(b+1) for bucket b).
            let u = rng.gen(i);
            let bucket = (u.leading_ones() as u64).min(62);
            // Uniform within the bucket's key range.
            let lo = if bucket == 0 {
                0
            } else {
                n as u64 >> (64 - bucket).min(63)
            };
            let hi = (n as u64 >> (63 - bucket).min(63)).max(lo + 1);
            let span = (hi - lo).max(1);
            lo + aux.gen_range(i, span) + 1
        })
        .collect()
}

/// `exptSeq-pairInt`: exponential keys with uniform values.
pub fn expt_seq_pair_int(n: usize, seed: u64) -> Vec<(u32, u32)> {
    let keys = expt_seq_int(n, seed);
    let vals = IndexRng::new(seed).stream(2);
    let bound = (n as u64).min(u32::MAX as u64 - 1);
    keys.into_par_iter()
        .enumerate()
        .with_min_len(4096)
        .map(|(i, k)| {
            (
                k.min(u32::MAX as u64 - 1) as u32,
                (vals.gen_range(i as u64, bound) + 1) as u32,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn random_seq_in_range_and_reproducible() {
        let a = random_seq_int(10_000, 1);
        let b = random_seq_int(10_000, 1);
        assert_eq!(a, b);
        assert!(a.iter().all(|&k| (1..=10_000).contains(&k)));
        // Roughly uniform: distinct count near n(1 - 1/e) ≈ 0.632 n.
        let distinct = a.iter().collect::<HashSet<_>>().len();
        assert!((5700..7000).contains(&distinct), "distinct = {distinct}");
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(random_seq_int(1000, 1), random_seq_int(1000, 2));
    }

    #[test]
    fn pair_int_keys_nonzero() {
        let pairs = random_seq_pair_int(10_000, 3);
        assert!(pairs.iter().all(|&(k, v)| k >= 1 && v >= 1));
    }

    #[test]
    fn expt_seq_is_skewed() {
        let a = expt_seq_int(100_000, 5);
        assert!(a.iter().all(|&k| k >= 1));
        let distinct = a.iter().collect::<HashSet<_>>().len();
        // Exponential distribution has far fewer distinct keys than
        // uniform (≈63k for uniform at this size).
        assert!(distinct < 40_000, "distinct = {distinct}");
        // And the single hottest key is very hot.
        let mut counts = std::collections::HashMap::new();
        for &k in &a {
            *counts.entry(k).or_insert(0usize) += 1;
        }
        let max = counts.values().max().unwrap();
        assert!(*max > 1000, "hottest key count = {max}");
    }

    #[test]
    fn expt_seq_reproducible() {
        assert_eq!(expt_seq_int(5000, 9), expt_seq_int(5000, 9));
    }

    #[test]
    fn expt_pairs_match_keys() {
        let pairs = expt_seq_pair_int(5000, 4);
        assert_eq!(pairs.len(), 5000);
        assert!(pairs.iter().all(|&(k, v)| k >= 1 && v >= 1));
    }
}
