//! 2-D point distributions (paper §6: the Delaunay refinement inputs
//! `2DinCube` and `2Dkuzmin`).

use phc_parutil::IndexRng;
use rayon::prelude::*;

/// A 2-D point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Point2d {
    /// x coordinate.
    pub x: f64,
    /// y coordinate.
    pub y: f64,
}

/// `2DinCube`: `n` points uniform in the unit square.
pub fn in_cube_2d(n: usize, seed: u64) -> Vec<Point2d> {
    let rx = IndexRng::new(seed);
    let ry = rx.stream(1);
    (0..n)
        .into_par_iter()
        .with_min_len(4096)
        .map(|i| Point2d {
            x: rx.gen_f64(i as u64),
            y: ry.gen_f64(i as u64),
        })
        .collect()
}

/// `2Dkuzmin`: `n` points from the Kuzmin disk distribution — a
/// heavily clustered radial profile used by PBBS to stress spatially
/// non-uniform meshes. Radius has CDF `F(r) = 1 - 1/√(1 + r²)`.
pub fn kuzmin_2d(n: usize, seed: u64) -> Vec<Point2d> {
    let ru = IndexRng::new(seed);
    let rt = ru.stream(1);
    (0..n)
        .into_par_iter()
        .with_min_len(4096)
        .map(|i| {
            let i = i as u64;
            let u = ru.gen_f64(i).min(1.0 - 1e-12);
            let r = ((1.0 / ((1.0 - u) * (1.0 - u))) - 1.0).sqrt();
            let theta = rt.gen_f64(i) * std::f64::consts::TAU;
            Point2d {
                x: r * theta.cos(),
                y: r * theta.sin(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cube_points_in_unit_square() {
        let pts = in_cube_2d(10_000, 1);
        assert_eq!(pts.len(), 10_000);
        assert!(pts
            .iter()
            .all(|p| (0.0..1.0).contains(&p.x) && (0.0..1.0).contains(&p.y)));
    }

    #[test]
    fn cube_reproducible() {
        assert_eq!(in_cube_2d(100, 5), in_cube_2d(100, 5));
    }

    #[test]
    fn kuzmin_is_centrally_clustered() {
        let pts = kuzmin_2d(20_000, 2);
        let within_1 = pts.iter().filter(|p| (p.x * p.x + p.y * p.y) < 1.0).count();
        // F(1) = 1 - 1/√2 ≈ 0.293 of mass within radius 1.
        let frac = within_1 as f64 / pts.len() as f64;
        assert!((0.26..0.33).contains(&frac), "frac = {frac}");
    }

    #[test]
    fn kuzmin_has_long_tail() {
        let pts = kuzmin_2d(20_000, 2);
        let far = pts
            .iter()
            .filter(|p| (p.x * p.x + p.y * p.y) > 100.0)
            .count();
        assert!(far > 0, "no tail points at all");
    }
}
