//! Deterministic reimplementations of the PBBS input distributions used
//! by the paper's evaluation (§6).
//!
//! Every generator is a pure function of `(seed, n)` — element `i` is
//! derived by hashing `i`, so generation parallelizes trivially and the
//! same inputs are reproduced bit-for-bit on every machine and thread
//! count. The six sequence distributions match the paper:
//!
//! * [`random_seq_int`] / [`random_seq_pair_int`] — uniform in `[1, n]`;
//! * [`expt_seq_int`] / [`expt_seq_pair_int`] — exponential (heavy
//!   duplication, stress-tests collision handling);
//! * [`zipf::zipf_seq_int`] — Zipf(s) key skew (YCSB-style KV
//!   traffic; feeds the sharded server's load generator);
//! * [`trigram::words`] — English-like strings from a letter trigram
//!   model (many duplicates, string comparisons);
//!
//! and the closed-loop KV request-log generator ([`kv`]) that drives
//! the deterministic sharded server in `crates/server`.
//!
//! plus the graph inputs (`3D-grid`, `random`, `rMat`), the point
//! distributions (`2DinCube`, `2Dkuzmin`), and synthetic stand-ins for
//! the paper's suffix-tree corpora (see [`text`]).

#![warn(missing_docs)]

pub mod graphs;
pub mod kv;
pub mod points;
pub mod sequences;
pub mod text;
pub mod trigram;
pub mod zipf;

pub use graphs::{grid3d, random_graph, rmat};
pub use kv::{kv_request_log, kv_rmw_log, KvOp, KvWorkload};
pub use points::{in_cube_2d, kuzmin_2d, Point2d};
pub use sequences::{expt_seq_int, expt_seq_pair_int, random_seq_int, random_seq_pair_int};
pub use zipf::{zipf_seq_int, Zipf};
