//! Zipfian key-skew sequences.
//!
//! [`sequences`](crate::sequences) covers the paper's distributions
//! (uniform and the PBBS geometric/exponential skew); high-traffic KV
//! workloads are conventionally modeled as Zipf(s) over the key space
//! instead (YCSB's default, and the regime Maier et al. evaluate
//! concurrent tables under). `P(k) ∝ 1/k^s`, so key 1 is the hottest
//! and the tail is long: at `s = 0.99` roughly 10% of the keys draw
//! ~90% of the traffic.
//!
//! Draws go through a precomputed CDF and a binary search, which makes
//! each sample a pure function of its uniform input — combined with
//! [`IndexRng`]'s hash-by-index generation, a Zipfian sequence is
//! deterministic and thread-count independent like every other
//! workload in this crate.

use phc_parutil::IndexRng;
use rayon::prelude::*;

/// A sampled Zipf(s) distribution over keys `1..=key_space`.
pub struct Zipf {
    /// `cdf[k-1]` = P(key ≤ k), normalized to end at 1.0.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Precomputes the CDF for `key_space` keys with exponent `s`.
    /// O(key_space) time and 8 bytes per key — fine up to tens of
    /// millions of keys.
    pub fn new(key_space: usize, s: f64) -> Self {
        assert!(key_space > 0, "empty key space");
        let mut cdf = Vec::with_capacity(key_space);
        let mut acc = 0.0f64;
        for k in 1..=key_space {
            acc += (k as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Number of keys in the distribution's support.
    pub fn key_space(&self) -> usize {
        self.cdf.len()
    }

    /// Maps one uniform `u64` draw to a key in `1..=key_space` by
    /// inverse-CDF binary search.
    pub fn key(&self, uniform: u64) -> u64 {
        // Top 53 bits → f64 in [0, 1).
        let u = (uniform >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        (self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1) + 1) as u64
    }
}

/// `zipfSeq-int`: `n` keys Zipf(`s`)-distributed over
/// `[1, key_space]`, deterministic per index.
pub fn zipf_seq_int(n: usize, key_space: usize, s: f64, seed: u64) -> Vec<u64> {
    let z = Zipf::new(key_space, s);
    let rng = IndexRng::new(seed);
    (0..n)
        .into_par_iter()
        .with_min_len(4096)
        .map(|i| z.key(rng.gen(i as u64)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn zipf_in_range_and_reproducible() {
        let a = zipf_seq_int(50_000, 10_000, 0.99, 11);
        let b = zipf_seq_int(50_000, 10_000, 0.99, 11);
        assert_eq!(a, b);
        assert!(a.iter().all(|&k| (1..=10_000).contains(&k)));
        assert_ne!(a, zipf_seq_int(50_000, 10_000, 0.99, 12));
    }

    #[test]
    fn zipf_is_rank_skewed() {
        let a = zipf_seq_int(100_000, 10_000, 1.0, 3);
        let mut counts: HashMap<u64, usize> = HashMap::new();
        for &k in &a {
            *counts.entry(k).or_insert(0) += 1;
        }
        // P(1) = 1/H(10000) ≈ 1/9.79: the hottest key alone draws ~10%
        // of the traffic (uniform would give each key 0.01%).
        let hot = counts.get(&1).copied().unwrap_or(0);
        assert!(hot > 5_000, "key 1 drew {hot} of 100k draws");
        // Frequency decays with rank.
        let mid = counts.get(&100).copied().unwrap_or(0);
        assert!(hot > 10 * mid.max(1), "hot={hot} rank-100={mid}");
    }

    #[test]
    fn zipf_exponent_zero_is_uniformish() {
        // s = 0 degenerates to uniform: the hottest key should be
        // close to the mean frequency, not a hot spot.
        let a = zipf_seq_int(100_000, 100, 0.0, 5);
        let mut counts: HashMap<u64, usize> = HashMap::new();
        for &k in &a {
            *counts.entry(k).or_insert(0) += 1;
        }
        let max = counts.values().max().copied().unwrap();
        assert!(max < 1600, "max bucket {max} vs mean 1000");
    }
}
