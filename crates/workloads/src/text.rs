//! Synthetic corpora standing in for the paper's suffix-tree texts.
//!
//! The paper uses three ~110 MB real-world files from the Manzini
//! lightweight corpus: `etext99` (English prose), `retail96`
//! (transaction records), `sprot34.dat` (protein database). Those files
//! are not redistributable here, so we synthesize texts with the same
//! *structural* character — alphabet size, repetition structure, and
//! record shape — which is what drives suffix-tree size and search
//! cost. The substitution is recorded in DESIGN.md §4.

use phc_parutil::IndexRng;

use crate::trigram::TrigramModel;

/// English-prose-like text of roughly `n` bytes (words from the trigram
/// model joined by spaces, sentences by periods). Stands in for
/// `etext99`.
pub fn english_like(n: usize, seed: u64) -> Vec<u8> {
    let model = TrigramModel::new();
    let rng = IndexRng::new(seed);
    let mut out = Vec::with_capacity(n + 32);
    let mut i = 0u64;
    while out.len() < n {
        let word = model.word(&rng, i);
        out.extend_from_slice(word.as_bytes());
        i += 1;
        if rng.gen_range(i, 12) == 0 {
            out.extend_from_slice(b". ");
        } else {
            out.push(b' ');
        }
    }
    out.truncate(n);
    out
}

/// Transaction-record-like text of roughly `n` bytes: newline-separated
/// records of small item ids drawn from a skewed distribution (heavy
/// repetition of popular items, like `retail96`).
pub fn retail_like(n: usize, seed: u64) -> Vec<u8> {
    let rng = IndexRng::new(seed);
    let mut out = Vec::with_capacity(n + 32);
    let mut i = 0u64;
    while out.len() < n {
        let items = 2 + rng.gen_range(i, 8);
        for j in 0..items {
            // Skewed item ids: square a uniform draw to favour small ids.
            let u = rng.stream(1).gen_f64(i * 16 + j);
            let id = (u * u * 9999.0) as u32;
            out.extend_from_slice(id.to_string().as_bytes());
            out.push(b' ');
        }
        out.push(b'\n');
        i += 1;
    }
    out.truncate(n);
    out
}

/// Protein-sequence-like text of roughly `n` bytes over the 20 amino
/// acid letters, with repeated motifs spliced in (like `sprot34.dat`).
pub fn protein_like(n: usize, seed: u64) -> Vec<u8> {
    const AA: &[u8; 20] = b"ACDEFGHIKLMNPQRSTVWY";
    let rng = IndexRng::new(seed);
    let motifs: Vec<Vec<u8>> = (0..32u64)
        .map(|m| {
            let s = rng.stream(1000 + m);
            (0..6 + s.gen_range(0, 10))
                .map(|j| AA[s.gen_range(j, 20) as usize])
                .collect()
        })
        .collect();
    let mut out = Vec::with_capacity(n + 32);
    let mut i = 0u64;
    while out.len() < n {
        if rng.gen_range(i, 4) == 0 {
            // Splice a motif (repetition structure).
            let m = &motifs[rng.gen_range(i * 2 + 1, 32) as usize];
            out.extend_from_slice(m);
        } else {
            out.push(AA[rng.gen_range(i * 2, 20) as usize]);
        }
        i += 1;
    }
    out.truncate(n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn english_like_shape() {
        let t = english_like(50_000, 1);
        assert_eq!(t.len(), 50_000);
        assert!(t
            .iter()
            .all(|&b| b.is_ascii_lowercase() || b == b' ' || b == b'.'));
        let spaces = t.iter().filter(|&&b| b == b' ').count();
        assert!(spaces > 5_000, "too few word boundaries: {spaces}");
    }

    #[test]
    fn retail_like_shape() {
        let t = retail_like(50_000, 2);
        assert_eq!(t.len(), 50_000);
        assert!(t
            .iter()
            .all(|&b| b.is_ascii_digit() || b == b' ' || b == b'\n'));
    }

    #[test]
    fn protein_like_shape() {
        let t = protein_like(50_000, 3);
        assert_eq!(t.len(), 50_000);
        assert!(t.iter().all(|b| b"ACDEFGHIKLMNPQRSTVWY".contains(b)));
    }

    #[test]
    fn protein_has_repeats() {
        // Motif splicing must create repeated 6-grams.
        let t = protein_like(100_000, 3);
        let mut grams = std::collections::HashMap::new();
        for w in t.windows(6) {
            *grams.entry(w).or_insert(0usize) += 1;
        }
        let max = grams.values().max().unwrap();
        assert!(*max > 20, "max 6-gram repetition {max}");
    }

    #[test]
    fn all_reproducible() {
        assert_eq!(english_like(1000, 7), english_like(1000, 7));
        assert_eq!(retail_like(1000, 7), retail_like(1000, 7));
        assert_eq!(protein_like(1000, 7), protein_like(1000, 7));
    }
}
