//! Parallel prefix sums (scans).
//!
//! Implemented with the classic blocked two-pass algorithm: partition the
//! input into blocks, reduce each block in parallel, scan the block sums
//! sequentially (there are few of them), then scan each block in parallel
//! seeded with its block offset. The result is bitwise identical to a
//! sequential scan, which is what makes `pack` — and therefore the hash
//! table's `elements()` — deterministic.

use rayon::prelude::*;

use crate::{grain, num_blocks};

/// Exclusive prefix sum of `input`; returns `(sums, total)` where
/// `sums[i] = input[0] + … + input[i-1]` and `total` is the sum of all
/// elements.
///
/// ```
/// let (sums, total) = phc_parutil::scan_exclusive(&[1usize, 2, 3, 4]);
/// assert_eq!(sums, vec![0, 1, 3, 6]);
/// assert_eq!(total, 10);
/// ```
pub fn scan_exclusive(input: &[usize]) -> (Vec<usize>, usize) {
    let n = input.len();
    if n == 0 {
        return (Vec::new(), 0);
    }
    let grain = grain();
    if n <= grain {
        let mut out = Vec::with_capacity(n);
        let mut acc = 0usize;
        for &x in input {
            out.push(acc);
            acc += x;
        }
        return (out, acc);
    }
    let nb = num_blocks(n, grain);
    let mut block_sums: Vec<usize> = vec![0; nb];
    input
        .par_chunks(grain)
        .zip(block_sums.par_iter_mut())
        .for_each(|(chunk, sum)| *sum = chunk.iter().sum());
    // Sequential scan over the (few) block sums.
    let mut acc = 0usize;
    for s in block_sums.iter_mut() {
        let v = *s;
        *s = acc;
        acc += v;
    }
    let total = acc;
    let mut out = vec![0usize; n];
    out.par_chunks_mut(grain)
        .zip(input.par_chunks(grain))
        .zip(block_sums.par_iter())
        .for_each(|((out_chunk, in_chunk), &offset)| {
            let mut acc = offset;
            for (o, &x) in out_chunk.iter_mut().zip(in_chunk) {
                *o = acc;
                acc += x;
            }
        });
    (out, total)
}

/// Inclusive prefix sum: `sums[i] = input[0] + … + input[i]`.
pub fn scan_inclusive(input: &[usize]) -> Vec<usize> {
    let (mut sums, _) = scan_exclusive(input);
    sums.par_iter_mut()
        .zip(input.par_iter())
        .for_each(|(s, &x)| *s += x);
    sums
}

/// In-place exclusive prefix sum; returns the total.
pub fn scan_inplace_exclusive(data: &mut [usize]) -> usize {
    let (sums, total) = scan_exclusive(data);
    data.copy_from_slice(&sums);
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DEFAULT_GRAIN;

    fn reference_exclusive(input: &[usize]) -> (Vec<usize>, usize) {
        let mut out = Vec::with_capacity(input.len());
        let mut acc = 0;
        for &x in input {
            out.push(acc);
            acc += x;
        }
        (out, acc)
    }

    #[test]
    fn empty() {
        let (s, t) = scan_exclusive(&[]);
        assert!(s.is_empty());
        assert_eq!(t, 0);
    }

    #[test]
    fn single() {
        let (s, t) = scan_exclusive(&[7]);
        assert_eq!(s, vec![0]);
        assert_eq!(t, 7);
    }

    #[test]
    fn matches_reference_small() {
        let input: Vec<usize> = (0..100).map(|i| (i * 7 + 3) % 11).collect();
        assert_eq!(scan_exclusive(&input), reference_exclusive(&input));
    }

    #[test]
    fn matches_reference_large() {
        let input: Vec<usize> = (0..100_000).map(|i| (i * 31 + 17) % 23).collect();
        assert_eq!(scan_exclusive(&input), reference_exclusive(&input));
    }

    #[test]
    fn inclusive_matches() {
        let input: Vec<usize> = (0..10_000).map(|i| i % 5).collect();
        let inc = scan_inclusive(&input);
        let (exc, total) = scan_exclusive(&input);
        for i in 0..input.len() {
            assert_eq!(inc[i], exc[i] + input[i]);
        }
        assert_eq!(*inc.last().unwrap(), total);
    }

    #[test]
    fn inplace_matches() {
        let mut data: Vec<usize> = (0..50_000).map(|i| i % 7).collect();
        let copy = data.clone();
        let total = scan_inplace_exclusive(&mut data);
        let (expect, expect_total) = reference_exclusive(&copy);
        assert_eq!(data, expect);
        assert_eq!(total, expect_total);
    }

    #[test]
    fn all_zeros() {
        let input = vec![0usize; 10_000];
        let (s, t) = scan_exclusive(&input);
        assert!(s.iter().all(|&x| x == 0));
        assert_eq!(t, 0);
    }

    #[test]
    fn exactly_grain_boundary() {
        for n in [
            DEFAULT_GRAIN - 1,
            DEFAULT_GRAIN,
            DEFAULT_GRAIN + 1,
            2 * DEFAULT_GRAIN,
        ] {
            let input: Vec<usize> = (0..n).map(|i| i % 3).collect();
            assert_eq!(scan_exclusive(&input), reference_exclusive(&input));
        }
    }
}
