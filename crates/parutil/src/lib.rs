//! PBBS-style parallel primitives underpinning the phase-concurrent hash
//! table reproduction.
//!
//! The SPAA'14 paper builds on the Problem Based Benchmark Suite's
//! sequence primitives: parallel prefix sums (`scan`), parallel pack
//! (`pack`), deterministic hash-based random number generation for
//! reproducible inputs, and bump arenas for variable-sized payloads that
//! the hash tables store by pointer. This crate provides those
//! substrates on top of [rayon]'s work-stealing fork-join model (the
//! paper used Cilk Plus, which has the same model).
//!
//! Everything here is deterministic: given the same inputs, `scan` and
//! `pack` produce identical outputs regardless of how rayon schedules
//! the blocks, and [`rng`] derives all randomness by hashing indices so
//! parallel generation is order-independent.

#![warn(missing_docs)]

pub mod arena;
pub mod pack;
pub mod pool;
pub mod rng;
pub mod scan;

pub use arena::Arena;
pub use pack::{
    pack, pack_index, pack_index_with_mask, pack_with, pack_with_mask, pack_with_mask_into,
};
pub use pool::{run_with_threads, with_pool};
pub use rng::{hash64, hash64_pair, IndexRng};
pub use scan::{scan_exclusive, scan_inclusive, scan_inplace_exclusive};

#[cfg(test)]
mod grain_tests {
    // One test covers the latch *and* the override because they share
    // process-global state: asserting the default, the stale env read,
    // and the live override in sequence avoids ordering races with a
    // concurrently running sibling test.
    #[test]
    fn grain_env_is_latched_but_override_is_live() {
        // PHC_GRAIN is unset in the test environment, so the once-read
        // value must be the compiled default.
        assert_eq!(super::grain(), super::DEFAULT_GRAIN);
        // The documented footgun: writing the env var *after* the
        // first read has no effect — the value is latched.
        std::env::set_var("PHC_GRAIN", "7");
        assert_eq!(super::grain(), super::DEFAULT_GRAIN);
        std::env::remove_var("PHC_GRAIN");
        // The in-process override takes effect immediately.
        super::set_grain_for_test(Some(7));
        assert_eq!(super::grain(), 7);
        super::set_grain_for_test(None);
        assert_eq!(super::grain(), super::DEFAULT_GRAIN);
    }
}

/// Default grain size for blocked parallel loops.
///
/// Chosen so that per-block scheduling overhead is negligible relative to
/// the work of a block while still exposing ample parallelism for tables
/// of ≥ 2^20 cells.
pub const DEFAULT_GRAIN: usize = 2048;

/// In-process override for [`grain`] (0 = no override). Unlike the
/// env knob, which is latched at first use, this is read on every
/// call, so tests and long-lived servers can retune without a
/// re-exec.
static GRAIN_OVERRIDE: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

/// Overrides the grain returned by [`grain`] for the current process
/// (`None` restores the `PHC_GRAIN`/default behavior). The env knob
/// is read once and latched — setting `PHC_GRAIN` after the first
/// [`grain`] call silently does nothing — so this is the supported
/// way to change the grain after startup (mirroring
/// `phc_core::simd::set_tier`).
pub fn set_grain_for_test(grain: Option<usize>) {
    GRAIN_OVERRIDE.store(grain.unwrap_or(0), std::sync::atomic::Ordering::SeqCst);
}

/// Grain size for blocked parallel loops: the in-process override
/// ([`set_grain_for_test`]) if one is set, else the `PHC_GRAIN`
/// environment variable (read **once**, at first use), else
/// [`DEFAULT_GRAIN`]. Lets benchmarks sweep grain sizes without
/// rebuilding; every blocked primitive in this crate (and the batched
/// table paths) uses it.
pub fn grain() -> usize {
    let o = GRAIN_OVERRIDE.load(std::sync::atomic::Ordering::Relaxed);
    if o > 0 {
        return o;
    }
    static GRAIN: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *GRAIN.get_or_init(|| {
        std::env::var("PHC_GRAIN")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&g: &usize| g > 0)
            .unwrap_or(DEFAULT_GRAIN)
    })
}

/// Splits `n` items into blocks of roughly `grain` items and returns the
/// number of blocks. Zero items yield zero blocks.
#[inline]
pub fn num_blocks(n: usize, grain: usize) -> usize {
    if n == 0 {
        0
    } else {
        n.div_ceil(grain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn num_blocks_edges() {
        assert_eq!(num_blocks(0, 100), 0);
        assert_eq!(num_blocks(1, 100), 1);
        assert_eq!(num_blocks(100, 100), 1);
        assert_eq!(num_blocks(101, 100), 2);
        assert_eq!(num_blocks(200, 100), 2);
    }
}
