//! PBBS-style parallel primitives underpinning the phase-concurrent hash
//! table reproduction.
//!
//! The SPAA'14 paper builds on the Problem Based Benchmark Suite's
//! sequence primitives: parallel prefix sums (`scan`), parallel pack
//! (`pack`), deterministic hash-based random number generation for
//! reproducible inputs, and bump arenas for variable-sized payloads that
//! the hash tables store by pointer. This crate provides those
//! substrates on top of [rayon]'s work-stealing fork-join model (the
//! paper used Cilk Plus, which has the same model).
//!
//! Everything here is deterministic: given the same inputs, `scan` and
//! `pack` produce identical outputs regardless of how rayon schedules
//! the blocks, and [`rng`] derives all randomness by hashing indices so
//! parallel generation is order-independent.

#![warn(missing_docs)]

pub mod arena;
pub mod pack;
pub mod pool;
pub mod rng;
pub mod scan;

pub use arena::Arena;
pub use pack::{pack, pack_index, pack_index_with_mask, pack_with, pack_with_mask};
pub use pool::{run_with_threads, with_pool};
pub use rng::{hash64, hash64_pair, IndexRng};
pub use scan::{scan_exclusive, scan_inclusive, scan_inplace_exclusive};

#[cfg(test)]
mod grain_tests {
    #[test]
    fn grain_defaults_without_env() {
        // PHC_GRAIN is unset in the test environment, so the once-read
        // value must be the compiled default.
        assert_eq!(super::grain(), super::DEFAULT_GRAIN);
    }
}

/// Default grain size for blocked parallel loops.
///
/// Chosen so that per-block scheduling overhead is negligible relative to
/// the work of a block while still exposing ample parallelism for tables
/// of ≥ 2^20 cells.
pub const DEFAULT_GRAIN: usize = 2048;

/// Grain size for blocked parallel loops: the `PHC_GRAIN` environment
/// variable (read **once**, at first use) or [`DEFAULT_GRAIN`]. Lets
/// benchmarks sweep grain sizes without rebuilding; every blocked
/// primitive in this crate (and the batched table paths) uses it.
pub fn grain() -> usize {
    static GRAIN: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *GRAIN.get_or_init(|| {
        std::env::var("PHC_GRAIN")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&g: &usize| g > 0)
            .unwrap_or(DEFAULT_GRAIN)
    })
}

/// Splits `n` items into blocks of roughly `grain` items and returns the
/// number of blocks. Zero items yield zero blocks.
#[inline]
pub fn num_blocks(n: usize, grain: usize) -> usize {
    if n == 0 {
        0
    } else {
        n.div_ceil(grain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn num_blocks_edges() {
        assert_eq!(num_blocks(0, 100), 0);
        assert_eq!(num_blocks(1, 100), 1);
        assert_eq!(num_blocks(100, 100), 1);
        assert_eq!(num_blocks(101, 100), 2);
        assert_eq!(num_blocks(200, 100), 2);
    }
}
