//! A thread-safe chunked bump arena.
//!
//! The paper's hash tables store large entries (strings, structs) "via a
//! pointer (which fits in a word)". That requires an allocator whose
//! allocations stay valid and immovable for the life of the table, and
//! which many threads can allocate from concurrently during an insert
//! phase. This arena provides exactly that: lock-free fast path through
//! a per-chunk bump cursor, with a mutex only on chunk exhaustion.
//!
//! Values are never dropped individually; the whole arena frees at once
//! (so `T: Copy`-like usage or leak-tolerant payloads are expected; we
//! run `Drop` for stored values when the arena is dropped).

use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of `T` slots in each chunk.
const CHUNK: usize = 4096;

struct Chunk<T> {
    slots: Box<[MaybeUninit<T>; CHUNK]>,
    /// Number of initialized slots (monotonically increasing; only the
    /// thread that won the bump writes the slot, so `len` is published
    /// with Release and read with Acquire).
    len: AtomicUsize,
}

impl<T> Chunk<T> {
    fn new() -> Self {
        let slots: Box<[MaybeUninit<T>; CHUNK]> = {
            let v: Vec<MaybeUninit<T>> = (0..CHUNK).map(|_| MaybeUninit::uninit()).collect();
            v.into_boxed_slice().try_into().map_err(|_| ()).unwrap()
        };
        Chunk {
            slots,
            len: AtomicUsize::new(0),
        }
    }
}

/// A concurrent bump arena handing out `&T` references that live as long
/// as the arena.
///
/// ```
/// let arena = phc_parutil::Arena::new();
/// let a: &str = arena.alloc_str("hello");
/// assert_eq!(a, "hello");
/// ```
pub struct Arena<T = u8> {
    /// Completed chunks; references into them remain valid because chunks
    /// are boxed and never moved or freed until the arena drops (the
    /// Box is what pins each chunk when the Vec reallocates).
    #[allow(clippy::vec_box)]
    full: Mutex<Vec<Box<Chunk<T>>>>,
    /// The currently-filling chunk, behind a pointer so allocating
    /// threads can race on the cursor without holding the mutex.
    current: Mutex<Box<Chunk<T>>>,
    /// Variable-length byte allocations (used by `alloc_slice`); each Box
    /// pins its heap data even when this Vec reallocates.
    slices: Mutex<Vec<Box<[u8]>>>,
    count: AtomicUsize,
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Arena<T> {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Arena {
            full: Mutex::new(Vec::new()),
            current: Mutex::new(Box::new(Chunk::new())),
            slices: Mutex::new(Vec::new()),
            count: AtomicUsize::new(0),
        }
    }

    /// Total number of values allocated.
    pub fn len(&self) -> usize {
        self.count.load(Ordering::Acquire)
    }

    /// Whether no values have been allocated.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Allocates `value` and returns a reference valid for the arena's
    /// lifetime.
    pub fn alloc(&self, value: T) -> &T {
        self.count.fetch_add(1, Ordering::AcqRel);
        loop {
            {
                let current = self.current.lock().unwrap();
                let idx = current.len.load(Ordering::Relaxed);
                if idx < CHUNK {
                    // Write then publish under the lock; the returned
                    // reference points into the boxed chunk which never
                    // moves.
                    let slot = &current.slots[idx] as *const MaybeUninit<T> as *mut MaybeUninit<T>;
                    // SAFETY: slot idx is unclaimed (len < CHUNK and we
                    // hold the lock), the chunk is pinned behind Box.
                    let r = unsafe {
                        (*slot).write(value);
                        &*(*slot).as_ptr()
                    };
                    current.len.store(idx + 1, Ordering::Release);
                    // Extend the lifetime to the arena's: chunks are only
                    // dropped in Arena::drop, which requires &mut self, so
                    // no shared reference can outlive them.
                    return unsafe { &*(r as *const T) };
                }
            }
            // Chunk full: retire it and install a fresh one, then retry.
            let mut current = self.current.lock().unwrap();
            if current.len.load(Ordering::Relaxed) >= CHUNK {
                let old = std::mem::replace(&mut *current, Box::new(Chunk::new()));
                self.full.lock().unwrap().push(old);
            }
        }
    }
}

impl Arena<u8> {
    /// Copies `s` into the arena and returns it as `&str`.
    ///
    /// Strings longer than the chunk size are not supported by the slot
    /// allocator, so long strings get their own boxed allocation retired
    /// directly into the arena's ownership.
    pub fn alloc_str(&self, s: &str) -> &str {
        let bytes = self.alloc_slice(s.as_bytes());
        // SAFETY: bytes are a verbatim copy of a valid &str.
        unsafe { std::str::from_utf8_unchecked(bytes) }
    }

    /// Copies `bytes` into the arena contiguously and returns the slice.
    pub fn alloc_slice(&self, bytes: &[u8]) -> &[u8] {
        // Contiguity matters here, so bypass the per-slot path: allocate
        // a boxed copy and retire it as a dedicated "chunk".
        // Cheap enough for workload strings (tens of bytes) because Box
        // allocation is the dominant cost either way.
        let boxed: Box<[u8]> = bytes.into();
        let ptr = boxed.as_ptr();
        let len = boxed.len();
        self.count.fetch_add(1, Ordering::AcqRel);
        self.slices.lock().unwrap().push(boxed);
        // SAFETY: the box is owned by the arena and never dropped or
        // moved until the arena itself drops (Box keeps the heap data
        // pinned even when the Vec of boxes reallocates).
        unsafe { std::slice::from_raw_parts(ptr, len) }
    }
}

impl<T> Drop for Arena<T> {
    fn drop(&mut self) {
        let drop_chunk = |chunk: &mut Chunk<T>| {
            let len = *chunk.len.get_mut();
            for slot in &mut chunk.slots[..len] {
                // SAFETY: slots below len were initialized by alloc.
                unsafe { slot.assume_init_drop() };
            }
        };
        for chunk in self.full.get_mut().unwrap().iter_mut() {
            drop_chunk(chunk);
        }
        drop_chunk(self.current.get_mut().unwrap());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_returns_stable_refs() {
        let arena: Arena<u64> = Arena::new();
        let refs: Vec<&u64> = (0..10_000u64).map(|i| arena.alloc(i)).collect();
        for (i, r) in refs.iter().enumerate() {
            assert_eq!(**r, i as u64);
        }
        assert_eq!(arena.len(), 10_000);
    }

    #[test]
    fn alloc_str_roundtrip() {
        let arena = Arena::new();
        let strs: Vec<&str> = (0..1000)
            .map(|i| arena.alloc_str(&format!("key-{i}")))
            .collect();
        for (i, s) in strs.iter().enumerate() {
            assert_eq!(*s, format!("key-{i}"));
        }
    }

    #[test]
    fn concurrent_alloc() {
        let arena: Arena<usize> = Arena::new();
        std::thread::scope(|scope| {
            for t in 0..8 {
                let arena = &arena;
                scope.spawn(move || {
                    for i in 0..5000 {
                        let v = t * 1_000_000 + i;
                        assert_eq!(*arena.alloc(v), v);
                    }
                });
            }
        });
        assert_eq!(arena.len(), 8 * 5000);
    }

    #[test]
    fn drops_contents() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Counted;
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        {
            let arena: Arena<Counted> = Arena::new();
            for _ in 0..CHUNK + 10 {
                arena.alloc(Counted);
            }
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), CHUNK + 10);
    }
}
