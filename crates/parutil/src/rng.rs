//! Deterministic hash-based randomness, PBBS `dataGen` style.
//!
//! The PBBS generators that the paper draws its inputs from do not use a
//! sequential RNG: element `i` of a random sequence is produced by
//! hashing `i` (and a seed). That makes generation embarrassingly
//! parallel *and* reproducible — the same `(seed, i)` always yields the
//! same value regardless of thread schedule, which in turn makes every
//! experiment input in this repository reproducible from a single seed.

/// A 64-bit finalizer-style mixing function (splitmix64 finalizer).
///
/// Passes the avalanche criterion well enough for workload generation and
/// for the hash tables' bucket mapping. Zero maps to a nonzero value.
#[inline]
pub fn hash64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Mixes two words into one (order-sensitive).
#[inline]
pub fn hash64_pair(a: u64, b: u64) -> u64 {
    hash64(a ^ hash64(b).rotate_left(32))
}

/// A tiny counter-free random source addressed by index.
///
/// `IndexRng::new(seed)` then `rng.gen(i)` is a pure function of
/// `(seed, i)`. All workload generators use this.
#[derive(Clone, Copy, Debug)]
pub struct IndexRng {
    seed: u64,
}

impl IndexRng {
    /// Creates a generator with the given seed.
    #[inline]
    pub fn new(seed: u64) -> Self {
        IndexRng {
            seed: hash64(seed ^ 0x5bf0_3635_d1c2_56e9),
        }
    }

    /// The `i`-th random word of this stream.
    #[inline]
    pub fn gen(&self, i: u64) -> u64 {
        hash64(self.seed ^ hash64(i))
    }

    /// The `i`-th random value in `[0, bound)`. `bound` must be nonzero.
    #[inline]
    pub fn gen_range(&self, i: u64, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Lemire-style multiply-shift reduction avoids modulo bias for the
        // bound sizes used here (≤ 2^40) well beyond measurement noise.
        let x = self.gen(i);
        ((x as u128 * bound as u128) >> 64) as u64
    }

    /// The `i`-th random double in `[0, 1)`.
    #[inline]
    pub fn gen_f64(&self, i: u64) -> f64 {
        (self.gen(i) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A derived independent stream (for multi-dimensional draws).
    #[inline]
    pub fn stream(&self, s: u64) -> IndexRng {
        IndexRng {
            seed: hash64_pair(self.seed, s),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash64_nonzero_for_zero() {
        assert_ne!(hash64(0), 0);
    }

    #[test]
    fn hash64_distinct_on_small_inputs() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..100_000u64 {
            assert!(seen.insert(hash64(i)), "collision at {i}");
        }
    }

    #[test]
    fn index_rng_reproducible() {
        let a = IndexRng::new(42);
        let b = IndexRng::new(42);
        for i in 0..1000 {
            assert_eq!(a.gen(i), b.gen(i));
        }
    }

    #[test]
    fn index_rng_seed_sensitivity() {
        let a = IndexRng::new(1);
        let b = IndexRng::new(2);
        let same = (0..1000).filter(|&i| a.gen(i) == b.gen(i)).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_within_bound() {
        let rng = IndexRng::new(7);
        for i in 0..10_000 {
            assert!(rng.gen_range(i, 100) < 100);
        }
    }

    #[test]
    fn gen_range_roughly_uniform() {
        let rng = IndexRng::new(9);
        let mut counts = [0usize; 10];
        let n = 100_000;
        for i in 0..n {
            counts[rng.gen_range(i, 10) as usize] += 1;
        }
        let expect = n as usize / 10;
        for &c in &counts {
            assert!(
                c > expect * 9 / 10 && c < expect * 11 / 10,
                "bucket count {c}"
            );
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let rng = IndexRng::new(3);
        for i in 0..10_000 {
            let x = rng.gen_f64(i);
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn streams_are_independent() {
        let rng = IndexRng::new(5);
        let s1 = rng.stream(1);
        let s2 = rng.stream(2);
        let same = (0..1000).filter(|&i| s1.gen(i) == s2.gen(i)).count();
        assert_eq!(same, 0);
    }
}
