//! Thread-pool helpers for running experiments at a fixed parallelism.
//!
//! The paper sweeps thread counts (Figure 4); rayon's global pool is
//! sized once per process, so per-experiment thread counts need local
//! pools. These helpers build a pool of exactly `t` threads and run a
//! closure inside it so that all `par_iter` work under the closure uses
//! that pool.

/// Runs `f` inside a freshly built rayon pool with `threads` worker
/// threads and returns its result.
///
/// Building a pool costs a few hundred microseconds; harnesses that time
/// operations should build the pool outside the timed region via
/// [`with_pool`].
pub fn run_with_threads<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
    with_pool(threads, |pool| pool.install(f))
}

/// Builds a rayon pool with `threads` workers and passes it to `f`.
pub fn with_pool<R>(threads: usize, f: impl FnOnce(&rayon::ThreadPool) -> R) -> R {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("failed to build rayon pool");
    f(&pool)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn pool_has_requested_threads() {
        for t in [1, 2, 4] {
            let n = run_with_threads(t, rayon::current_num_threads);
            assert_eq!(n, t);
        }
    }

    #[test]
    fn work_runs_inside_pool() {
        let sum: u64 = run_with_threads(2, || (0..1000u64).into_par_iter().sum());
        assert_eq!(sum, 999 * 1000 / 2);
    }
}
