//! Parallel pack (filter) built on [`scan`](crate::scan).
//!
//! `pack` is the engine of the hash table's `elements()` operation: it
//! compacts the non-empty cells of the table array into a contiguous
//! output while preserving index order. Because the offsets come from a
//! deterministic prefix sum, the packed output is identical across runs
//! and thread counts — the property the paper relies on for determinism.

use rayon::prelude::*;

use crate::scan::scan_exclusive;
use crate::{num_blocks, DEFAULT_GRAIN};

/// Packs the elements of `input` satisfying `keep` into a new vector,
/// preserving their relative order.
///
/// ```
/// let out = phc_parutil::pack(&[1, 2, 3, 4, 5, 6], |&x| x % 2 == 0);
/// assert_eq!(out, vec![2, 4, 6]);
/// ```
pub fn pack<T, F>(input: &[T], keep: F) -> Vec<T>
where
    T: Clone + Send + Sync,
    F: Fn(&T) -> bool + Send + Sync,
{
    pack_with(input, |x| if keep(x) { Some(x.clone()) } else { None })
}

/// Packs `f(x)` for every element where `f` returns `Some`, preserving
/// order. This is a fused filter+map so callers can transform table cells
/// (e.g. unpack an atomic word into an entry) in one pass.
pub fn pack_with<T, U, F>(input: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> Option<U> + Send + Sync,
{
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    let grain = DEFAULT_GRAIN;
    let nb = num_blocks(n, grain);
    let mut counts = vec![0usize; nb];
    input
        .par_chunks(grain)
        .zip(counts.par_iter_mut())
        .for_each(|(chunk, count)| {
            *count = chunk.iter().filter(|x| f(x).is_some()).count();
        });
    let (offsets, total) = scan_exclusive(&counts);
    let mut out: Vec<U> = Vec::with_capacity(total);
    // SAFETY: every slot in 0..total is written exactly once below —
    // block b writes the half-open range [offsets[b], offsets[b] + counts[b])
    // and those ranges partition 0..total by construction of the scan.
    #[allow(clippy::uninit_vec)]
    unsafe {
        out.set_len(total);
    }
    let out_ptr = SendPtr(out.as_mut_ptr());
    input
        .par_chunks(grain)
        .zip(offsets.par_iter())
        .for_each(|(chunk, &offset)| {
            // Rebind to capture the SendPtr by value (Send, not Sync).
            #[allow(clippy::redundant_locals)]
            let out_ptr = out_ptr;
            let mut k = offset;
            for x in chunk {
                if let Some(u) = f(x) {
                    // SAFETY: see above; k stays within this block's range.
                    unsafe { out_ptr.0.add(k).write(u) };
                    k += 1;
                }
            }
        });
    out
}

/// Returns the indices `i` for which `keep(&input[i])` holds, in order.
pub fn pack_index<T, F>(input: &[T], keep: F) -> Vec<usize>
where
    T: Sync,
    F: Fn(&T) -> bool + Send + Sync,
{
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    let grain = DEFAULT_GRAIN;
    let nb = num_blocks(n, grain);
    let mut counts = vec![0usize; nb];
    input
        .par_chunks(grain)
        .zip(counts.par_iter_mut())
        .for_each(|(chunk, count)| {
            *count = chunk.iter().filter(|x| keep(x)).count();
        });
    let (offsets, total) = scan_exclusive(&counts);
    let mut out: Vec<usize> = Vec::with_capacity(total);
    #[allow(clippy::uninit_vec)]
    unsafe {
        out.set_len(total);
    }
    let out_ptr = SendPtr(out.as_mut_ptr());
    input
        .par_chunks(grain)
        .enumerate()
        .zip(offsets.par_iter())
        .for_each(|((b, chunk), &offset)| {
            // Rebind to capture the SendPtr by value (Send, not Sync).
            #[allow(clippy::redundant_locals)]
            let out_ptr = out_ptr;
            let mut k = offset;
            for (j, x) in chunk.iter().enumerate() {
                if keep(x) {
                    unsafe { out_ptr.0.add(k).write(b * grain + j) };
                    k += 1;
                }
            }
        });
    out
}

/// A raw pointer wrapper that asserts cross-thread transferability.
///
/// Sound only because each thread writes a disjoint range (guaranteed by
/// the exclusive scan of per-block counts).
struct SendPtr<U>(*mut U);
impl<U> Clone for SendPtr<U> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<U> Copy for SendPtr<U> {}
unsafe impl<U: Send> Send for SendPtr<U> {}
unsafe impl<U: Send> Sync for SendPtr<U> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input() {
        let out: Vec<u32> = pack(&[], |_| true);
        assert!(out.is_empty());
    }

    #[test]
    fn keep_all() {
        let input: Vec<u32> = (0..10_000).collect();
        assert_eq!(pack(&input, |_| true), input);
    }

    #[test]
    fn keep_none() {
        let input: Vec<u32> = (0..10_000).collect();
        assert!(pack(&input, |_| false).is_empty());
    }

    #[test]
    fn keep_every_third_preserves_order() {
        let input: Vec<u32> = (0..100_000).collect();
        let out = pack(&input, |&x| x % 3 == 0);
        let expect: Vec<u32> = (0..100_000).filter(|x| x % 3 == 0).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn pack_with_transforms() {
        let input: Vec<u32> = (0..50_000).collect();
        let out = pack_with(&input, |&x| if x % 2 == 0 { Some(x * 10) } else { None });
        let expect: Vec<u32> = (0..50_000).filter(|x| x % 2 == 0).map(|x| x * 10).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn pack_index_matches_positions() {
        let input: Vec<u32> = (0..30_000).map(|i| i % 7).collect();
        let idx = pack_index(&input, |&x| x == 0);
        let expect: Vec<usize> = (0..30_000).filter(|i| i % 7 == 0).collect();
        assert_eq!(idx, expect);
    }

    #[test]
    fn deterministic_across_runs() {
        let input: Vec<u64> = (0..200_000u64)
            .map(|i| i.wrapping_mul(0x9e37_79b9))
            .collect();
        let a = pack(&input, |&x| x % 5 < 2);
        let b = pack(&input, |&x| x % 5 < 2);
        assert_eq!(a, b);
    }
}
