//! Parallel pack (filter) built on [`scan`](crate::scan).
//!
//! `pack` is the engine of the hash table's `elements()` operation: it
//! compacts the non-empty cells of the table array into a contiguous
//! output while preserving index order. Because the offsets come from a
//! deterministic prefix sum, the packed output is identical across runs
//! and thread counts — the property the paper relies on for determinism.

use rayon::prelude::*;

use crate::grain;
use crate::scan::scan_exclusive;

/// Packs the elements of `input` satisfying `keep` into a new vector,
/// preserving their relative order.
///
/// ```
/// let out = phc_parutil::pack(&[1, 2, 3, 4, 5, 6], |&x| x % 2 == 0);
/// assert_eq!(out, vec![2, 4, 6]);
/// ```
pub fn pack<T, F>(input: &[T], keep: F) -> Vec<T>
where
    T: Clone + Send + Sync,
    F: Fn(&T) -> bool + Send + Sync,
{
    pack_with(input, |x| if keep(x) { Some(x.clone()) } else { None })
}

/// Packs `f(x)` for every element where `f` returns `Some`, preserving
/// order. This is a fused filter+map so callers can transform table cells
/// (e.g. unpack an atomic word into an entry) in one pass.
///
/// `f` is evaluated **exactly once per element**: each block collects
/// its survivors into a local buffer during the count pass, and the
/// write pass just moves those buffers to their scanned offsets. (The
/// obvious two-pass formulation re-evaluates `f` in the write pass —
/// doubling the work for closures that do atomic loads + unpacking.)
pub fn pack_with<T, U, F>(input: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> Option<U> + Send + Sync,
{
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    let grain = grain();
    let mut buffers: Vec<Vec<U>> = input
        .par_chunks(grain)
        .map(|chunk| chunk.iter().filter_map(&f).collect())
        .collect();
    let counts: Vec<usize> = buffers.iter().map(Vec::len).collect();
    let (offsets, total) = scan_exclusive(&counts);
    let mut out: Vec<U> = Vec::with_capacity(total);
    // SAFETY: every slot in 0..total is written exactly once below —
    // block b writes the half-open range [offsets[b], offsets[b] + counts[b])
    // and those ranges partition 0..total by construction of the scan.
    #[allow(clippy::uninit_vec)]
    unsafe {
        out.set_len(total);
    }
    let out_ptr = SendPtr(out.as_mut_ptr());
    buffers
        .par_iter_mut()
        .zip(offsets.par_iter())
        .for_each(|(buf, &offset)| {
            // Rebind to capture the SendPtr by value (Send, not Sync).
            #[allow(clippy::redundant_locals)]
            let out_ptr = out_ptr;
            // SAFETY: moves the buffer's elements into this block's
            // disjoint range (see above); set_len(0) forgets the moved
            // values so they are not dropped twice.
            unsafe {
                std::ptr::copy_nonoverlapping(buf.as_ptr(), out_ptr.0.add(offset), buf.len());
                buf.set_len(0);
            }
        });
    out
}

/// Returns the indices `i` for which `keep(&input[i])` holds, in order.
///
/// Like [`pack_with`], `keep` is evaluated exactly once per element.
pub fn pack_index<T, F>(input: &[T], keep: F) -> Vec<usize>
where
    T: Sync,
    F: Fn(&T) -> bool + Send + Sync,
{
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    let grain = grain();
    let mut buffers: Vec<Vec<usize>> = input
        .par_chunks(grain)
        .enumerate()
        .map(|(b, chunk)| {
            chunk
                .iter()
                .enumerate()
                .filter_map(|(j, x)| keep(x).then_some(b * grain + j))
                .collect()
        })
        .collect();
    let counts: Vec<usize> = buffers.iter().map(Vec::len).collect();
    let (offsets, total) = scan_exclusive(&counts);
    let mut out: Vec<usize> = Vec::with_capacity(total);
    #[allow(clippy::uninit_vec)]
    unsafe {
        out.set_len(total);
    }
    let out_ptr = SendPtr(out.as_mut_ptr());
    buffers
        .par_iter_mut()
        .zip(offsets.par_iter())
        .for_each(|(buf, &offset)| {
            // Rebind to capture the SendPtr by value (Send, not Sync).
            #[allow(clippy::redundant_locals)]
            let out_ptr = out_ptr;
            // SAFETY: disjoint ranges; usize is Copy so no double drop.
            unsafe {
                std::ptr::copy_nonoverlapping(buf.as_ptr(), out_ptr.0.add(offset), buf.len());
                buf.set_len(0);
            }
        });
    out
}

/// Packs `decode(x)` for every element whose bit is set in the
/// occupancy masks produced by `mask_of`, preserving index order.
///
/// This is the wide-scan (SIMD) counterpart of [`pack_with`]: instead
/// of evaluating a per-element predicate, the count pass asks `mask_of`
/// for a **bitmask per window of up to 64 elements** (bit `j` set ⇔
/// `window[j]` survives) — the shape produced by
/// `phc_core::simd::scan_nonempty_mask` — and popcounts it. The masks
/// are computed once, kept per block, and the write pass decodes just
/// the set bits into each block's disjoint output range, so `decode`
/// runs exactly once per survivor and never on a dropped element.
///
/// Like [`pack_with`], the output is a pure function of the input:
/// offsets come from a deterministic prefix sum over the per-block
/// popcounts, independent of thread count or scheduling.
pub fn pack_with_mask<T, U, M, F>(input: &[T], mask_of: M, decode: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    M: Fn(&[T]) -> u64 + Send + Sync,
    F: Fn(&T) -> U + Send + Sync,
{
    let mut out = Vec::new();
    pack_with_mask_impl(input, mask_of, |_, x| decode(x), &mut out);
    out
}

/// [`pack_with_mask`] into a caller-provided buffer: the packed
/// entries are **appended** to `out` (existing contents are
/// preserved), so a caller that packs repeatedly (the KV server's
/// per-shard export loop, for one) reuses one allocation instead of
/// paying a fresh `Vec` per call — and a multi-source caller can pack
/// several inputs into one buffer back to back. The appended suffix is
/// byte-identical to what [`pack_with_mask`] returns.
pub fn pack_with_mask_into<T, U, M, F>(input: &[T], mask_of: M, decode: F, out: &mut Vec<U>)
where
    T: Sync,
    U: Send,
    M: Fn(&[T]) -> u64 + Send + Sync,
    F: Fn(&T) -> U + Send + Sync,
{
    pack_with_mask_impl(input, mask_of, |_, x| decode(x), out);
}

/// Returns the indices of the set bits of the occupancy masks produced
/// by `mask_of`, in ascending order — the index-only counterpart of
/// [`pack_with_mask`] (cf. [`pack_index`]).
pub fn pack_index_with_mask<T, M>(input: &[T], mask_of: M) -> Vec<usize>
where
    T: Sync,
    M: Fn(&[T]) -> u64 + Send + Sync,
{
    let mut out = Vec::new();
    pack_with_mask_impl(input, mask_of, |i, _| i, &mut out);
    out
}

/// Shared engine: packs `decode(index, element)` for each set bit of
/// the per-window masks, in ascending index order, **appended** to
/// `out` (existing contents and capacity are preserved).
fn pack_with_mask_impl<T, U, M, F>(input: &[T], mask_of: M, decode: F, out: &mut Vec<U>)
where
    T: Sync,
    U: Send,
    M: Fn(&[T]) -> u64 + Send + Sync,
    F: Fn(usize, &T) -> U + Send + Sync,
{
    let n = input.len();
    if n == 0 {
        return;
    }
    let block = grain().next_multiple_of(64);
    let blocks: Vec<(usize, Vec<u64>)> = input
        .par_chunks(block)
        .enumerate()
        .map(|(b, chunk)| (b * block, chunk.chunks(64).map(&mask_of).collect()))
        .collect();
    let counts: Vec<usize> = blocks
        .iter()
        .map(|(_, masks)| masks.iter().map(|m| m.count_ones() as usize).sum())
        .collect();
    let (offsets, total) = scan_exclusive(&counts);
    let base = out.len();
    out.reserve(total);
    // SAFETY: every slot in base..base+total is written exactly once by
    // the disjoint per-block ranges below; the prior contents in
    // 0..base are untouched.
    #[allow(clippy::uninit_vec)]
    unsafe {
        out.set_len(base + total);
    }
    let out_ptr = SendPtr(unsafe { out.as_mut_ptr().add(base) });
    blocks
        .par_iter()
        .zip(offsets.par_iter())
        .for_each(|((base, masks), &offset)| {
            #[allow(clippy::redundant_locals)]
            let out_ptr = out_ptr;
            let mut cursor = offset;
            for (w, &m) in masks.iter().enumerate() {
                let win_base = base + w * 64;
                let mut bits = m;
                while bits != 0 {
                    let j = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let idx = win_base + j;
                    // SAFETY: disjoint range per block (see
                    // `pack_with_mask`).
                    unsafe {
                        out_ptr.0.add(cursor).write(decode(idx, &input[idx]));
                    }
                    cursor += 1;
                }
            }
        });
}

/// A raw pointer wrapper that asserts cross-thread transferability.
///
/// Sound only because each thread writes a disjoint range (guaranteed by
/// the exclusive scan of per-block counts).
struct SendPtr<U>(*mut U);
impl<U> Clone for SendPtr<U> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<U> Copy for SendPtr<U> {}
unsafe impl<U: Send> Send for SendPtr<U> {}
unsafe impl<U: Send> Sync for SendPtr<U> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input() {
        let out: Vec<u32> = pack(&[], |_| true);
        assert!(out.is_empty());
    }

    #[test]
    fn keep_all() {
        let input: Vec<u32> = (0..10_000).collect();
        assert_eq!(pack(&input, |_| true), input);
    }

    #[test]
    fn keep_none() {
        let input: Vec<u32> = (0..10_000).collect();
        assert!(pack(&input, |_| false).is_empty());
    }

    #[test]
    fn keep_every_third_preserves_order() {
        let input: Vec<u32> = (0..100_000).collect();
        let out = pack(&input, |&x| x % 3 == 0);
        let expect: Vec<u32> = (0..100_000).filter(|x| x % 3 == 0).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn pack_with_transforms() {
        let input: Vec<u32> = (0..50_000).collect();
        let out = pack_with(&input, |&x| if x % 2 == 0 { Some(x * 10) } else { None });
        let expect: Vec<u32> = (0..50_000).filter(|x| x % 2 == 0).map(|x| x * 10).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn pack_index_matches_positions() {
        let input: Vec<u32> = (0..30_000).map(|i| i % 7).collect();
        let idx = pack_index(&input, |&x| x == 0);
        let expect: Vec<usize> = (0..30_000).filter(|i| i % 7 == 0).collect();
        assert_eq!(idx, expect);
    }

    #[test]
    fn pack_with_evaluates_closure_once_per_element() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let input: Vec<u32> = (0..100_000).collect();
        let calls = AtomicUsize::new(0);
        let out = pack_with(&input, |&x| {
            calls.fetch_add(1, Ordering::Relaxed);
            (x % 4 == 0).then_some(x)
        });
        assert_eq!(calls.load(Ordering::Relaxed), input.len());
        assert_eq!(out.len(), 25_000);
    }

    #[test]
    fn pack_index_evaluates_predicate_once_per_element() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let input: Vec<u32> = (0..100_000).collect();
        let calls = AtomicUsize::new(0);
        let idx = pack_index(&input, |&x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x % 10 == 0
        });
        assert_eq!(calls.load(Ordering::Relaxed), input.len());
        assert_eq!(idx.len(), 10_000);
    }

    #[test]
    fn pack_with_drops_no_survivors() {
        // Moved (not re-evaluated, not leaked) values: every survivor
        // is dropped exactly once by the caller of pack_with.
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        let input: Vec<u32> = (0..10_000).collect();
        let out = pack_with(&input, |&x| (x % 2 == 0).then(|| D));
        assert_eq!(out.len(), 5_000);
        let before = DROPS.load(Ordering::Relaxed);
        drop(out);
        assert_eq!(DROPS.load(Ordering::Relaxed) - before, 5_000);
    }

    /// Reference mask closure: bit j set ⇔ window[j] is odd.
    fn odd_mask(win: &[u64]) -> u64 {
        win.iter()
            .enumerate()
            .fold(0, |m, (j, &x)| m | (u64::from(x % 2 == 1) << j))
    }

    #[test]
    fn pack_with_mask_matches_pack_with() {
        for n in [0usize, 1, 63, 64, 65, 4096, 100_000] {
            let input: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x9e37_79b9)).collect();
            let expect = pack_with(&input, |&x| (x % 2 == 1).then_some(x * 3));
            let got = pack_with_mask(&input, odd_mask, |&x| x * 3);
            assert_eq!(got, expect, "n = {n}");
        }
    }

    #[test]
    fn pack_with_mask_into_appends() {
        let input: Vec<u64> = (0..30_000u64)
            .map(|i| i.wrapping_mul(0x9e37_79b9))
            .collect();
        let expect = pack_with_mask(&input, odd_mask, |&x| x * 3);
        let mut out = vec![u64::MAX; 100]; // prior contents must survive
        pack_with_mask_into(&input, odd_mask, |&x| x * 3, &mut out);
        assert_eq!(out[..100], [u64::MAX; 100]);
        assert_eq!(out[100..], expect[..]);
    }

    #[test]
    fn pack_with_mask_into_reuses_buffer() {
        let input: Vec<u64> = (0..30_000u64)
            .map(|i| i.wrapping_mul(0x9e37_79b9))
            .collect();
        let expect = pack_with_mask(&input, odd_mask, |&x| x * 3);
        let mut out = Vec::new();
        pack_with_mask_into(&input, odd_mask, |&x| x * 3, &mut out);
        assert_eq!(out, expect);
        let cap = out.capacity();
        out.clear();
        pack_with_mask_into(&input, odd_mask, |&x| x * 3, &mut out);
        assert_eq!(out, expect);
        assert_eq!(out.capacity(), cap, "second pack must not reallocate");
    }

    #[test]
    fn pack_with_mask_into_empty_input_preserves_buffer() {
        let mut out = vec![7u64, 8, 9];
        pack_with_mask_into(&[], odd_mask, |&x: &u64| x, &mut out);
        assert_eq!(out, [7, 8, 9]);
    }

    #[test]
    fn pack_index_with_mask_matches_pack_index() {
        let input: Vec<u64> = (0..70_000u64).map(|i| i.wrapping_mul(31)).collect();
        let expect = pack_index(&input, |&x| x % 2 == 1);
        assert_eq!(pack_index_with_mask(&input, odd_mask), expect);
    }

    #[test]
    fn pack_with_mask_decodes_survivors_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let input: Vec<u64> = (0..50_000).collect();
        let calls = AtomicUsize::new(0);
        let out = pack_with_mask(&input, odd_mask, |&x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 25_000);
        assert_eq!(calls.load(Ordering::Relaxed), 25_000);
    }

    #[test]
    fn deterministic_across_runs() {
        let input: Vec<u64> = (0..200_000u64)
            .map(|i| i.wrapping_mul(0x9e37_79b9))
            .collect();
        let a = pack(&input, |&x| x % 5 < 2);
        let b = pack(&input, |&x| x % 5 < 2);
        assert_eq!(a, b);
    }
}
