//! Remove duplicates (paper §5; Table 3).
//!
//! The simplest application: insert everything, return `elements()`.
//! With the deterministic table the output *sequence* (not just the
//! output set) is the same on every run and at every thread count —
//! which is what lets a surrounding parallel algorithm stay internally
//! deterministic.

use phc_core::entry::HashEntry;
use phc_core::phase::{ConcurrentInsert, PhaseHashTable};
use rayon::prelude::*;

/// Removes duplicates from `input` using the phase-concurrent table
/// built by `make_table(log2)`. Returns the distinct entries in the
/// table's `elements()` order (deterministic iff the table is).
pub fn remove_duplicates<E, T, F>(input: &[E], make_table: F) -> Vec<E>
where
    E: HashEntry,
    T: PhaseHashTable<E>,
    F: FnOnce(u32) -> T,
{
    // Paper (§6, Table 3): table of 2^27 cells for n = 10^8 — scale
    // the same ratio (≈ 1.34 n).
    let log2 = (input.len() * 4 / 3).max(4).next_power_of_two().trailing_zeros();
    let mut table = make_table(log2);
    {
        let ins = table.begin_insert();
        input.par_iter().with_min_len(512).for_each(|&e| ins.insert(e));
    }
    table.elements()
}

#[cfg(test)]
mod tests {
    use super::*;
    use phc_core::{ChainedHashTable, CuckooHashTable, DetHashTable, NdHashTable, U64Key};
    use std::collections::BTreeSet;

    fn input() -> Vec<U64Key> {
        phc_workloads::expt_seq_int(20_000, 1).into_iter().map(U64Key::new).collect()
    }

    #[test]
    fn removes_all_duplicates() {
        let inp = input();
        let out = remove_duplicates(&inp, DetHashTable::<U64Key>::new_pow2);
        let expect: BTreeSet<U64Key> = inp.iter().copied().collect();
        let got: BTreeSet<U64Key> = out.iter().copied().collect();
        assert_eq!(got, expect);
        assert_eq!(out.len(), expect.len());
    }

    #[test]
    fn deterministic_sequence_for_det_table() {
        let inp = input();
        let a = remove_duplicates(&inp, DetHashTable::<U64Key>::new_pow2);
        let mut shuffled = inp.clone();
        shuffled.reverse();
        let b = remove_duplicates(&shuffled, DetHashTable::<U64Key>::new_pow2);
        // Same set, same *order*, regardless of input order.
        assert_eq!(a, b);
    }

    #[test]
    fn all_tables_agree_on_the_set() {
        let inp = input();
        let expect: BTreeSet<U64Key> =
            remove_duplicates(&inp, DetHashTable::<U64Key>::new_pow2).into_iter().collect();
        for got in [
            remove_duplicates(&inp, NdHashTable::<U64Key>::new_pow2),
            remove_duplicates(&inp, |l| CuckooHashTable::<U64Key>::new_pow2(l + 1)),
            remove_duplicates(&inp, ChainedHashTable::<U64Key>::new_pow2_cr),
        ] {
            assert_eq!(got.into_iter().collect::<BTreeSet<_>>(), expect);
        }
    }

    #[test]
    fn empty_input() {
        let out = remove_duplicates::<U64Key, _, _>(&[], DetHashTable::new_pow2);
        assert!(out.is_empty());
    }
}
