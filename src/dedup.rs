//! Remove duplicates (paper §5; Table 3).
//!
//! The simplest application: insert everything, return `elements()`.
//! With the deterministic table the output *sequence* (not just the
//! output set) is the same on every run and at every thread count —
//! which is what lets a surrounding parallel algorithm stay internally
//! deterministic.

use phc_core::entry::HashEntry;
use phc_core::phase::{ConcurrentInsert, PhaseHashTable};
use rayon::prelude::*;

/// Removes duplicates from `input` using the phase-concurrent table
/// built by `make_table(log2)`. Returns the distinct entries in the
/// table's `elements()` order (deterministic iff the table is).
pub fn remove_duplicates<E, T, F>(input: &[E], make_table: F) -> Vec<E>
where
    E: HashEntry,
    T: PhaseHashTable<E>,
    F: FnOnce(u32) -> T,
{
    // Paper (§6, Table 3): table of 2^27 cells for n = 10^8 — scale
    // the same ratio (≈ 1.34 n).
    let log2 = (input.len() * 4 / 3)
        .max(4)
        .next_power_of_two()
        .trailing_zeros();
    let mut table = make_table(log2);
    {
        let ins = table.begin_insert();
        input
            .par_iter()
            .with_min_len(512)
            .for_each(|&e| ins.insert(e));
    }
    table.elements()
}

/// Removes duplicates without a size estimate: the table starts at 16
/// cells and grows cooperatively as distinct keys arrive.
///
/// Use this when the *distinct* count is unknown — duplicate-heavy or
/// streamed inputs — where [`remove_duplicates`]'s `1.34 n` sizing
/// (proportional to the input length) can overshoot the needed
/// capacity by orders of magnitude. Here memory tracks the distinct
/// count instead, at the cost of migrating entries through `O(log n)`
/// doublings. The output is the same deterministic sequence: growth is
/// normalized away between phases, so the final layout — and therefore
/// `elements()` — is a pure function of the distinct key set.
pub fn remove_duplicates_grow<E: HashEntry>(input: &[E]) -> Vec<E> {
    let mut table: phc_core::ResizableTable<E> = phc_core::ResizableTable::new_pow2(4);
    {
        let ins = table.begin_insert();
        input
            .par_iter()
            .with_min_len(512)
            .for_each(|&e| ins.insert(e));
    }
    table.elements()
}

#[cfg(test)]
mod tests {
    use super::*;
    use phc_core::{ChainedHashTable, CuckooHashTable, DetHashTable, NdHashTable, U64Key};
    use std::collections::BTreeSet;

    fn input() -> Vec<U64Key> {
        phc_workloads::expt_seq_int(20_000, 1)
            .into_iter()
            .map(U64Key::new)
            .collect()
    }

    #[test]
    fn removes_all_duplicates() {
        let inp = input();
        let out = remove_duplicates(&inp, DetHashTable::<U64Key>::new_pow2);
        let expect: BTreeSet<U64Key> = inp.iter().copied().collect();
        let got: BTreeSet<U64Key> = out.iter().copied().collect();
        assert_eq!(got, expect);
        assert_eq!(out.len(), expect.len());
    }

    #[test]
    fn deterministic_sequence_for_det_table() {
        let inp = input();
        let a = remove_duplicates(&inp, DetHashTable::<U64Key>::new_pow2);
        let mut shuffled = inp.clone();
        shuffled.reverse();
        let b = remove_duplicates(&shuffled, DetHashTable::<U64Key>::new_pow2);
        // Same set, same *order*, regardless of input order.
        assert_eq!(a, b);
    }

    #[test]
    fn all_tables_agree_on_the_set() {
        let inp = input();
        let expect: BTreeSet<U64Key> = remove_duplicates(&inp, DetHashTable::<U64Key>::new_pow2)
            .into_iter()
            .collect();
        for got in [
            remove_duplicates(&inp, NdHashTable::<U64Key>::new_pow2),
            remove_duplicates(&inp, |l| CuckooHashTable::<U64Key>::new_pow2(l + 1)),
            remove_duplicates(&inp, ChainedHashTable::<U64Key>::new_pow2_cr),
        ] {
            assert_eq!(got.into_iter().collect::<BTreeSet<_>>(), expect);
        }
    }

    #[test]
    fn empty_input() {
        let out = remove_duplicates::<U64Key, _, _>(&[], DetHashTable::new_pow2);
        assert!(out.is_empty());
        assert!(remove_duplicates_grow::<U64Key>(&[]).is_empty());
    }

    #[test]
    fn grow_variant_matches_preallocated_set_and_is_deterministic() {
        let inp = input();
        let expect: BTreeSet<U64Key> = remove_duplicates(&inp, DetHashTable::<U64Key>::new_pow2)
            .into_iter()
            .collect();
        let a = remove_duplicates_grow(&inp);
        assert_eq!(a.iter().copied().collect::<BTreeSet<_>>(), expect);
        // Deterministic sequence across input orders, like the
        // fixed-size det table — growth is normalized away.
        let mut rev = inp.clone();
        rev.reverse();
        assert_eq!(a, remove_duplicates_grow(&rev));
    }

    #[test]
    fn grow_variant_sizes_to_distinct_count_not_input_length() {
        // 200k inputs but only 500 distinct keys: the grown table's
        // capacity must track the distinct count (here ≤ 2^10 = 1024
        // cells at load 3/4), not the 2^18 cells the 1.34n estimate
        // would preallocate.
        let inp: Vec<U64Key> = (0..200_000u64).map(|i| U64Key::new(1 + i % 500)).collect();
        let mut table: phc_core::ResizableTable<U64Key> = phc_core::ResizableTable::new_pow2(4);
        {
            let ins = table.begin_insert();
            inp.par_iter()
                .with_min_len(512)
                .for_each(|&e| ins.insert(e));
        }
        assert_eq!(table.elements().len(), 500);
        assert!(table.capacity() <= 1024, "capacity {}", table.capacity());
    }
}
