//! Phase-concurrent hash tables for determinism — the full stack.
//!
//! A Rust reproduction of *Shun & Blelloch, "Phase-Concurrent Hash
//! Tables for Determinism" (SPAA 2014)*. This facade crate re-exports
//! the whole workspace:
//!
//! * [`tables`] (from `phc-core`) — the deterministic phase-concurrent
//!   hash table and every baseline the paper compares against;
//! * [`server`] (from `phc-server`) — the deterministic sharded KV
//!   service composing phase-concurrent shards;
//! * [`parutil`] — PBBS-style parallel primitives (scan, pack, arenas);
//! * [`workloads`] — the paper's input distributions plus the Zipfian
//!   closed-loop KV load generator;
//! * [`graphs`] — BFS, spanning forest, edge contraction;
//! * [`geometry`] — Delaunay triangulation + deterministic refinement;
//! * [`strings`] — suffix trees over phase-concurrent tables;
//! * [`dedup`] — the remove-duplicates application (defined here).
//!
//! ## Quickstart
//!
//! ```
//! use phase_concurrent_hashing::tables::{DetHashTable, U64Key, PhaseHashTable,
//!     ConcurrentInsert, ConcurrentRead};
//! use rayon::prelude::*;
//!
//! let mut table: DetHashTable<U64Key> = DetHashTable::new_pow2(16);
//! {
//!     let ins = table.begin_insert();                 // insert phase
//!     (1..=1000u64).into_par_iter().for_each(|k| ins.insert(U64Key::new(k)));
//! }
//! let reader = table.begin_read();                    // find phase
//! assert!(reader.find(U64Key::new(500)).is_some());
//! assert_eq!(reader.elements().len(), 1000);          // deterministic order
//! ```

pub use phc_core as tables;
pub use phc_geometry as geometry;
pub use phc_graphs as graphs;
pub use phc_parutil as parutil;
pub use phc_server as server;
pub use phc_strings as strings;
pub use phc_workloads as workloads;

pub mod dedup;
