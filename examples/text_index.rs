//! Build a suffix-tree text index and run pattern searches — the
//! paper's suffix tree application (§5), with the insert phase and the
//! search phase cleanly separated.
//!
//! ```text
//! cargo run --release --example text_index
//! ```

use phase_concurrent_hashing::strings::SuffixTree;
use phase_concurrent_hashing::tables::{DetHashTable, KeepMin, KvPair};

fn main() {
    let text = phase_concurrent_hashing::workloads::text::english_like(100_000, 9);
    let mut index = SuffixTree::build(&text, DetHashTable::<KvPair<KeepMin>>::new_pow2);
    println!(
        "indexed {} bytes into {} suffix-tree nodes",
        text.len(),
        index.num_nodes()
    );

    // Real substrings are always found...
    for &(start, len) in &[(10usize, 12usize), (5_000, 25), (99_000, 40)] {
        let pat = &text[start..start + len];
        let pos = index.search(pat).expect("substring must be found") as usize;
        assert_eq!(&text[pos..pos + len], pat);
        println!(
            "found {:>2}-byte pattern {:?} at offset {pos}",
            len,
            String::from_utf8_lossy(&pat[..len.min(16)])
        );
    }

    // ...and absent patterns are rejected.
    for pat in [&b"zzqzzq"[..], b"the quick brown fox!", b"\x01\x02\x03"] {
        assert_eq!(index.search(pat), None);
    }
    println!("absent patterns correctly rejected ✓");
}
