//! The two "beyond the paper" conveniences: a growable deterministic
//! table (`ResizableTable`, implementing §4's resizing outline) and a
//! self-phasing table (`AutoPhaseTable`, the room-synchronization
//! future work from §7).
//!
//! ```text
//! cargo run --release --example auto_phases
//! ```

use phase_concurrent_hashing::tables::{AutoPhaseTable, ResizableTable, U64Key};
use rayon::prelude::*;

fn main() {
    // --- ResizableTable: start tiny, grow deterministically. ---------
    let mut grow: ResizableTable<U64Key> = ResizableTable::new_pow2(4); // 16 cells!
    grow.insert_phase(|t| {
        (1..=100_000u64)
            .into_par_iter()
            .for_each(|k| t.insert(U64Key::new(k)));
    });
    println!(
        "ResizableTable grew from 16 to {} cells for {} keys (load {:.2})",
        grow.capacity(),
        grow.len(),
        grow.len() as f64 / grow.capacity() as f64
    );
    // Determinism survives growth: rebuild in a different order.
    let mut grow2: ResizableTable<U64Key> = ResizableTable::new_pow2(4);
    grow2.insert_phase(|t| {
        (1..100_001usize)
            .into_par_iter()
            .rev()
            .for_each(|k| t.insert(U64Key::new(k as u64)));
    });
    assert_eq!(grow.snapshot(), grow2.snapshot());
    println!("identical layout from a reversed build, across ~13 doublings ✓");

    // --- AutoPhaseTable: no phase discipline required. ----------------
    let auto: AutoPhaseTable<U64Key> = AutoPhaseTable::new_pow2(16);
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let auto = &auto;
            s.spawn(move || {
                // Threads freely interleave operation *types*; the room
                // synchronizer serializes types, not operations.
                for i in 0..5_000u64 {
                    let k = t * 10_000 + i + 1;
                    auto.insert(U64Key::new(k));
                    if i % 4 == 0 {
                        auto.delete(U64Key::new(k));
                    } else {
                        assert!(auto.find(U64Key::new(k)).is_some());
                    }
                }
            });
        }
    });
    println!(
        "AutoPhaseTable survived 4 threads of mixed ops: {} keys remain",
        auto.elements().len()
    );
}
