//! Quickstart: the deterministic phase-concurrent hash table in 60
//! lines — insert phase, find phase, delete phase, and the determinism
//! guarantee that makes it interesting.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use phase_concurrent_hashing::tables::{
    ConcurrentDelete, ConcurrentInsert, ConcurrentRead, DetHashTable, PhaseHashTable, U64Key,
};
use rayon::prelude::*;

fn main() {
    // A table with 2^20 cells. It does not resize; pick a size that
    // keeps the load factor under ~0.9 (see ResizableTable for a
    // growable wrapper).
    let mut table: DetHashTable<U64Key> = DetHashTable::new_pow2(20);

    // --- Insert phase -------------------------------------------------
    // `begin_insert` borrows the table mutably, so no other phase can
    // run until the handle drops; the handle itself is Sync, so any
    // number of threads may insert through it.
    let keys: Vec<u64> = (1..=500_000u64).collect();
    {
        let ins = table.begin_insert();
        keys.par_iter().for_each(|&k| ins.insert(U64Key::new(k)));
    }

    // --- Find phase ---------------------------------------------------
    {
        let reader = table.begin_read();
        let hits = keys
            .par_iter()
            .filter(|&&k| reader.find(U64Key::new(k)).is_some())
            .count();
        println!("found {hits} of {} inserted keys", keys.len());
        assert_eq!(hits, keys.len());
    }

    // --- elements(): the deterministic extraction ----------------------
    // The packed sequence is a pure function of the key set: any
    // insertion order, any thread count, same output.
    let elems = table.elements();
    println!(
        "elements() returned {} keys; first = {:?}",
        elems.len(),
        elems[0]
    );

    // Demonstrate the guarantee: rebuild in reverse order, in parallel,
    // and compare the *sequences* (not just the sets).
    let mut table2: DetHashTable<U64Key> = DetHashTable::new_pow2(20);
    {
        let ins = table2.begin_insert();
        keys.par_iter()
            .rev()
            .for_each(|&k| ins.insert(U64Key::new(k)));
    }
    assert_eq!(elems, table2.elements());
    println!("identical elements() sequence from a reversed, parallel build ✓");

    // --- Delete phase ---------------------------------------------------
    {
        let del = table.begin_delete();
        keys.par_iter()
            .filter(|&&k| k % 2 == 0)
            .for_each(|&k| del.delete(U64Key::new(k)));
    }
    let reader = table.begin_read();
    assert!(reader.find(U64Key::new(2)).is_none());
    assert!(reader.find(U64Key::new(3)).is_some());
    println!("deleted the even keys; {} remain", table.elements().len());
}
