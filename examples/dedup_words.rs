//! Remove duplicates over string keys (the paper's motivating simple
//! application, §5), showing pointer-based entries: English-like words
//! are interned in an arena, the table stores one word per pointer.
//!
//! ```text
//! cargo run --release --example dedup_words
//! ```

use phase_concurrent_hashing::dedup::{remove_duplicates, remove_duplicates_grow};
use phase_concurrent_hashing::parutil::Arena;
use phase_concurrent_hashing::tables::{DetHashTable, StrPayload, StrRef};

fn main() {
    let n = 300_000;
    let words = phase_concurrent_hashing::workloads::trigram::words(n, 42);

    // Intern the strings; the table stores word-sized pointers (the
    // paper's prescription for entries wider than a machine word).
    let text_arena: Arena<u8> = Arena::new();
    let payload_arena: Arena<StrPayload> = Arena::new();
    let entries: Vec<StrRef> = words
        .iter()
        .map(|w| {
            StrRef(payload_arena.alloc(StrPayload {
                key: text_arena.alloc_str(w),
                value: 0,
            }))
        })
        .collect();

    let distinct = remove_duplicates(&entries, DetHashTable::<StrRef>::new_pow2);
    println!("{} words, {} distinct", n, distinct.len());

    // Determinism: the output *sequence* of strings is identical no
    // matter how the inserts were ordered or scheduled.
    let mut reversed = entries.clone();
    reversed.reverse();
    let distinct2 = remove_duplicates(&reversed, DetHashTable::<StrRef>::new_pow2);
    assert_eq!(distinct.len(), distinct2.len());
    assert!(distinct
        .iter()
        .zip(&distinct2)
        .all(|(a, b)| a.key() == b.key()));
    println!("deterministic output sequence across input orders ✓");

    println!(
        "a few samples: {:?}",
        distinct.iter().take(8).map(|e| e.key()).collect::<Vec<_>>()
    );

    // When the distinct count is unknown up front — here the word list
    // is duplicate-heavy, so sizing from the input length would
    // overshoot — use the growable table: it starts at 16 cells and
    // grows with the distinct count, yet produces the same
    // deterministic sequence.
    let grown = remove_duplicates_grow(&entries);
    assert_eq!(grown.len(), distinct.len());
    let grown_rev = remove_duplicates_grow(&reversed);
    // Same distinct count as the preallocated run, and the grown
    // table's own sequence is identical across input orders. (The two
    // variants' sequences differ from each other: elements() order
    // depends on capacity, and the grown table normalizes to the
    // smaller canonical capacity for the distinct count.)
    assert!(grown
        .iter()
        .zip(&grown_rev)
        .all(|(a, b)| a.key() == b.key()));
    println!("growable table (no size estimate): same set, deterministic sequence ✓");
}
