//! Deterministic BFS over a power-law graph using the hash-table
//! frontier of the paper's Figure 2, cross-checked against the
//! array-based implementation.
//!
//! ```text
//! cargo run --release --example graph_bfs
//! ```

use phase_concurrent_hashing::graphs::bfs::{array_bfs, hash_bfs, levels_from_parents, serial_bfs};
use phase_concurrent_hashing::graphs::Graph;
use phase_concurrent_hashing::tables::{DetHashTable, U64Key};

fn main() {
    // An rMat power-law graph: 2^16 vertices, ~300k edges.
    let el = phase_concurrent_hashing::workloads::rmat(16, 300_000, 7);
    let g = Graph::from_edges(&el);
    println!(
        "graph: {} vertices, {} directed edges",
        g.num_vertices(),
        g.num_directed_edges()
    );

    let parents_hash = hash_bfs(&g, 0, DetHashTable::<U64Key>::new_pow2);
    let parents_array = array_bfs(&g, 0);
    assert_eq!(
        parents_hash, parents_array,
        "both WriteMin BFS variants agree exactly"
    );

    let parents_serial = serial_bfs(&g, 0);
    let levels = levels_from_parents(&parents_hash, 0);
    assert_eq!(
        levels,
        levels_from_parents(&parents_serial, 0),
        "level structure matches serial BFS"
    );

    let reached = levels.iter().filter(|&&l| l >= 0).count();
    let max_level = levels.iter().max().copied().unwrap_or(0);
    println!("reached {reached} vertices; eccentricity from vertex 0 = {max_level}");
    println!(
        "parent of vertex 1 = {}, of vertex 42 = {}",
        parents_hash[1], parents_hash[42]
    );
    println!("deterministic parents via WriteMin + deterministic frontier via elements() ✓");
}
