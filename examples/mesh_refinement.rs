//! Parallel deterministic Delaunay refinement (the paper's motivating
//! application, §1 and §5): triangulate random points, then insert
//! Steiner points until every interior triangle has all angles ≥ 26°.
//!
//! ```text
//! cargo run --release --example mesh_refinement
//! ```

use phase_concurrent_hashing::geometry::{refine, triangulate};
use phase_concurrent_hashing::tables::{DetHashTable, U64Key};

fn main() {
    let n = 5_000;
    let pts = phase_concurrent_hashing::workloads::in_cube_2d(n, 123);
    let mut mesh = triangulate(&pts);
    println!("input: {} points → {} triangles", n, mesh.live_triangles());

    let stats = refine(&mut mesh, 26.0, 500_000, DetHashTable::<U64Key>::new_pow2);
    println!(
        "refinement: {} rounds, {} Steiner points, {} bad triangles left",
        stats.rounds, stats.points_added, stats.final_bad
    );
    println!("final mesh: {} triangles", mesh.live_triangles());
    mesh.check_integrity()
        .expect("mesh adjacency is consistent");

    // Determinism: run again from scratch and compare the final meshes
    // vertex-for-vertex and triangle-for-triangle.
    let mut mesh2 = triangulate(&pts);
    let stats2 = refine(&mut mesh2, 26.0, 500_000, DetHashTable::<U64Key>::new_pow2);
    assert_eq!(stats, stats2);
    assert_eq!(mesh.points, mesh2.points);
    assert_eq!(mesh.tris.len(), mesh2.tris.len());
    println!("bit-identical mesh on a second run ✓ (deterministic refinement)");
}
